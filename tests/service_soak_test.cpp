// Fault-injected soak harness for the simulation service (ctest label
// "service-soak").
//
// Thousands of queued jobs — healthy, transiently failing, poisoned,
// malformed, oversized, cancelled, plus real netlist and fault-injected
// device simulations — flow through one Server from several submitter
// threads. The harness then audits the full response transcript against the
// protocol's lifecycle contract: per-job seq numbers contiguous and in
// arrival order, exactly one terminal event per admitted job, standalone
// `rejected` for everything never admitted, zero leaked queue slots, and a
// process that is still healthy afterwards. Separate cases prove the
// service's answers are bitwise-equal to direct library calls and that a
// killed daemon resumes journaled Monte-Carlo jobs to bitwise-identical
// results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "cells/inverter.hpp"
#include "core/variation.hpp"
#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "fault_injection.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"
#include "service/server.hpp"
#include "service/supervisor.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace ss = softfet::service;
namespace fs = std::filesystem;
using softfet::BudgetExceededError;
using softfet::ConvergenceError;
using softfet::util::BudgetStop;

namespace {

/// Thread-safe transcript collector with per-id views.
class Transcript {
 public:
  ss::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  [[nodiscard]] std::map<std::string, std::vector<ss::JsonValue>> by_id()
      const {
    std::map<std::string, std::vector<ss::JsonValue>> out;
    for (const auto& line : lines()) {
      ss::JsonValue v = ss::json_parse(line);
      out[v.string_or("id", "")].push_back(std::move(v));
    }
    return out;
  }
  [[nodiscard]] std::vector<ss::JsonValue> events(const std::string& id) const {
    std::vector<ss::JsonValue> out;
    for (const auto& line : lines()) {
      ss::JsonValue v = ss::json_parse(line);
      if (v.string_or("id", "") == id) out.push_back(std::move(v));
    }
    return out;
  }
  [[nodiscard]] std::size_t count(const std::string& id,
                                  const std::string& event) const {
    std::size_t n = 0;
    for (const auto& ev : events(id)) {
      if (ev.string_or("event", "") == event) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

[[nodiscard]] bool is_terminal(const std::string& event) {
  return event == "result" || event == "error" || event == "cancelled";
}

/// Audit one admitted-or-rejected job transcript against the lifecycle
/// contract. Returns the terminal event name ("rejected" for non-admitted).
std::string check_lifecycle(const std::string& id,
                            const std::vector<ss::JsonValue>& events) {
  EXPECT_FALSE(events.empty()) << id << " produced no response at all";
  if (events.empty()) return "missing";
  const std::string first = events.front().string_or("event", "");
  if (first == "rejected") {
    EXPECT_EQ(events.size(), 1u) << id << " got events past its rejection";
    return "rejected";
  }
  EXPECT_EQ(first, "accepted") << id;
  bool started = false;
  std::size_t terminals = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].number_or("seq", -1), static_cast<double>(i))
        << id << " seq gap at position " << i;
    const std::string event = events[i].string_or("event", "");
    if (i == 0) continue;
    if (event == "started") {
      EXPECT_FALSE(started) << id << " started twice";
      EXPECT_EQ(terminals, 0u) << id;
      started = true;
    } else if (event == "chunk" || event == "progress" ||
               event == "retrying") {
      EXPECT_TRUE(started) << id << " streamed before start";
      EXPECT_EQ(terminals, 0u) << id;
    } else if (is_terminal(event)) {
      ++terminals;
      EXPECT_EQ(i, events.size() - 1)
          << id << " emitted past its terminal " << event;
    } else {
      ADD_FAILURE() << id << " unexpected event '" << event << "'";
    }
  }
  EXPECT_EQ(terminals, 1u) << id << " needs exactly one terminal event";
  const std::string last = events.back().string_or("event", "");
  if (last == "result") {
    EXPECT_TRUE(started) << id;
  }
  return last;
}

/// Small linear RC netlists (note the mandatory SPICE title line) — a few
/// variants so the content-addressed cache sees both hits and misses.
[[nodiscard]] std::string rc_netlist(int variant) {
  return "soak rc " + std::to_string(variant) +
         "\\nV1 in 0 1\\nR1 in out " + std::to_string(1 + variant) +
         "k\\nC1 out 0 1n\\n.tran 1u 10u\\n.end";
}

/// Register the cheap fault-injection handlers the soak mixes in. All of
/// them are driven by the request payload, so one server serves every mode.
void register_fault_handlers(ss::Server& server) {
  server.register_handler("ok", [](const ss::Request& req,
                                   ss::JobContext& ctx) {
    ss::JsonValue result = ss::JsonValue::object();
    result.set("value", ss::JsonValue::number(req.payload.number_or("n", 0)));
    ctx.finish(std::move(result));
  });
  server.register_handler("flaky", [](const ss::Request&, ss::JobContext& ctx) {
    if (ctx.attempt < 2) throw ConvergenceError("injected transient failure");
    ctx.finish(ss::JsonValue::object());
  });
  server.register_handler("fatal", [](const ss::Request&, ss::JobContext&) {
    throw ConvergenceError("injected permanent divergence");
  });
  server.register_handler("internal", [](const ss::Request&, ss::JobContext&) {
    throw std::runtime_error("injected handler bug");
  });
  server.register_handler("budget", [](const ss::Request&, ss::JobContext&) {
    throw BudgetExceededError("injected wall-clock exhaustion",
                              BudgetStop::kWallClock);
  });
  server.register_handler(
      "cancelme", [](const ss::Request&, ss::JobContext& ctx) {
        // Wait (bounded) for the client's cancel; a cancel that never
        // arrives — or arrived before the pop — still terminates cleanly.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
        while (!ctx.cancel->requested() &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (ctx.cancel->requested()) {
          throw BudgetExceededError("cancelled", BudgetStop::kCancel);
        }
        ctx.finish(ss::JsonValue::object());
      });
  server.register_handler(
      "fault_rc", [](const ss::Request& req, ss::JobContext& ctx) {
        // A real fault-injected device simulation: NaN residuals sabotage
        // the Newton solves mid-transient. A bounded fault budget is cured
        // by the recovery ladder; an unlimited one diverges terminally.
        namespace sd = softfet::devices;
        namespace sim = softfet::sim;
        const int budget = static_cast<int>(req.payload.number_or("fault_budget", 1));
        sim::Circuit circuit;
        const auto in = circuit.node("in");
        const auto out = circuit.node("out");
        circuit.add<sd::VSource>("Vin", in, sim::kGroundNode,
                                 sd::SourceSpec::ramp(0.0, 1.0, 100e-12,
                                                      30e-12));
        circuit.add<sd::Resistor>("R1", in, out, 1e3);
        circuit.add<sd::Capacitor>("C1", out, sim::kGroundNode, 1e-15);
        circuit.add<softfet::testing::FaultDevice>(
            "FLT1", out, softfet::testing::FaultMode::kNanResidual, 200e-12,
            1e-9, budget);
        circuit.prepare();
        const auto tran = sim::run_transient(circuit, 2e-9, ctx.options);
        ss::JsonValue result = ss::JsonValue::object();
        result.set("accepted_steps",
                   ss::JsonValue::number(
                       static_cast<double>(tran.accepted_steps)));
        ctx.finish(std::move(result));
      });
}

/// Process-isolation config with test-speed heartbeats. Hard-fault cases
/// (ServiceHardFault.*) run ONLY under this mode: in thread mode a single
/// SIGSEGV would take the whole test binary down.
[[nodiscard]] ss::ServerConfig process_config(std::size_t workers) {
  ss::ServerConfig config;
  config.workers = workers;
  config.isolation = ss::IsolationMode::kProcess;
  config.heartbeat_interval_seconds = 0.05;
  config.heartbeat_timeout_seconds = 1.0;
  config.hang_grace_seconds = 0.4;
  config.retry.base_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  return config;
}

/// RLIMIT_AS cap for sandboxed workers: the test binary's own address
/// space (forked children inherit it wholesale — gtest, thread stacks,
/// allocator arenas) plus 320 MB of real headroom for the allocation bomb
/// to chew through. An absolute cap would either dwarf the machine or sit
/// below the parent's footprint and starve healthy jobs.
[[nodiscard]] std::size_t worker_memory_cap() {
  std::size_t pages = 0;
  std::ifstream statm("/proc/self/statm");
  if (!(statm >> pages) || pages == 0) return std::size_t{2} << 30;
  return pages * static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)) +
         (std::size_t{320} << 20);
}

/// Handlers whose faults no thread can survive: they crash, stall, or
/// freeze the worker *process*. "hard_fault" drives a FaultDevice inside a
/// real transient so the crash happens mid-solve, exactly where a buggy
/// device model would fire; "sleepy" and "freeze" give lifecycle tests a
/// busy resp. heartbeat-silent worker to shoot at.
void register_hard_fault_handlers(ss::Server& server) {
  server.register_handler(
      "hard_fault", [](const ss::Request& req, ss::JobContext& ctx) {
        namespace sd = softfet::devices;
        namespace sim = softfet::sim;
        using softfet::testing::FaultMode;
        const std::string mode_name = req.payload.string_or("mode", "");
        FaultMode mode = FaultMode::kCrashAbort;
        if (mode_name == "abort") {
          mode = FaultMode::kCrashAbort;
        } else if (mode_name == "segv") {
          mode = FaultMode::kCrashNullDeref;
        } else if (mode_name == "alloc_bomb") {
          mode = FaultMode::kAllocBomb;
        } else if (mode_name == "spin") {
          mode = FaultMode::kInfiniteLoop;
        } else {
          throw softfet::Error("unknown hard_fault mode '" + mode_name + "'");
        }
        sim::Circuit circuit;
        const auto in = circuit.node("in");
        const auto out = circuit.node("out");
        circuit.add<sd::VSource>(
            "Vin", in, sim::kGroundNode,
            sd::SourceSpec::ramp(0.0, 1.0, 100e-12, 30e-12));
        circuit.add<sd::Resistor>("R1", in, out, 1e3);
        circuit.add<sd::Capacitor>("C1", out, sim::kGroundNode, 1e-15);
        circuit.add<softfet::testing::FaultDevice>("FLT1", out, mode, 200e-12,
                                                   1e-9, 1);
        circuit.prepare();
        const auto tran = sim::run_transient(circuit, 2e-9, ctx.options);
        ss::JsonValue result = ss::JsonValue::object();
        result.set("accepted_steps",
                   ss::JsonValue::number(
                       static_cast<double>(tran.accepted_steps)));
        ctx.finish(std::move(result));
      });
  server.register_handler(
      "sleepy", [](const ss::Request& req, ss::JobContext& ctx) {
        const int ms = static_cast<int>(req.payload.number_or("ms", 500));
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
        while (std::chrono::steady_clock::now() < deadline &&
               !ctx.cancel->requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ss::JsonValue result = ss::JsonValue::object();
        result.set("slept", ss::JsonValue::number(ms));
        ctx.finish(std::move(result));
      });
  server.register_handler("freeze", [](const ss::Request&, ss::JobContext&) {
    // SIGSTOP freezes the whole worker process — heartbeats included — so
    // only the supervisor's heartbeat-silence SIGKILL can reclaim the slot.
    ::raise(SIGSTOP);
  });
}

}  // namespace

TEST(ServiceSoak, ThousandsOfFaultInjectedJobsKeepTheContract) {
  ss::ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  config.max_netlist_bytes = 1024;  // small cap so oversized lines are cheap
  config.retry.max_attempts = 3;
  config.retry.base_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
  register_fault_handlers(server);

  Transcript out;
  const ss::Sink sink = out.sink();

  constexpr int kThreads = 3;
  constexpr int kPerThread = 700;  // 2100 submissions total
  std::mutex ids_mutex;
  std::vector<std::string> job_ids;
  std::vector<std::string> control_ids;
  std::atomic<std::size_t> unaddressed_rejections{0};

  const auto submitter = [&](int tid) {
    std::vector<std::string> my_jobs;
    std::vector<std::string> my_controls;
    for (int i = 0; i < kPerThread; ++i) {
      const std::string id =
          "j" + std::to_string(tid) + "-" + std::to_string(i);
      const std::string idq = "\"id\":\"" + id + "\"";
      switch (i % 20) {
        case 0:  // malformed NDJSON -> standalone rejection with empty id
          server.handle_line("{\"id\": " + id, sink);
          ++unaddressed_rejections;
          continue;
        case 1:  // blank keepalive -> no response at all
          server.handle_line("   \t ", sink);
          continue;
        case 2: {  // oversized embedded netlist -> rejected invalid
          server.handle_line("{" + idq + ",\"type\":\"netlist\",\"netlist\":\"" +
                                 std::string(2000, 'x') + "\"}",
                             sink);
          my_jobs.push_back(id);
          continue;
        }
        case 3:  // real netlist simulation through the cache
          server.handle_line("{" + idq + ",\"type\":\"netlist\",\"netlist\":\"" +
                                 rc_netlist(i % 3) + "\"}",
                             sink);
          my_jobs.push_back(id);
          continue;
        case 4: {  // mid-job (or pre-pop) cooperative cancel
          server.handle_line("{" + idq + ",\"type\":\"cancelme\"}", sink);
          const std::string ctl =
              "c" + std::to_string(tid) + "-" + std::to_string(i);
          server.handle_line("{\"id\":\"" + ctl +
                                 "\",\"type\":\"cancel\",\"job\":\"" + id +
                                 "\"}",
                             sink);
          my_jobs.push_back(id);
          my_controls.push_back(ctl);
          continue;
        }
        case 5:
          server.handle_line("{" + idq + ",\"type\":\"flaky\"}", sink);
          break;
        case 6:
          server.handle_line("{" + idq + ",\"type\":\"fatal\"}", sink);
          break;
        case 7:
          server.handle_line("{" + idq + ",\"type\":\"internal\"}", sink);
          break;
        case 8:
          server.handle_line("{" + idq + ",\"type\":\"budget\"}", sink);
          break;
        case 9:  // fault-injected device sim, cured by the recovery ladder
          server.handle_line(
              "{" + idq + ",\"type\":\"fault_rc\",\"fault_budget\":1}", sink);
          break;
        case 19:
          if (i % 400 == 19) {  // a few terminally diverging device sims
            server.handle_line(
                "{" + idq + ",\"type\":\"fault_rc\",\"fault_budget\":-1}",
                sink);
            break;
          }
          [[fallthrough]];
        default:
          server.handle_line(
              "{" + idq + ",\"type\":\"ok\",\"n\":" + std::to_string(i) + "}",
              sink);
          break;
      }
      my_jobs.push_back(id);
    }
    const std::lock_guard<std::mutex> lock(ids_mutex);
    job_ids.insert(job_ids.end(), my_jobs.begin(), my_jobs.end());
    control_ids.insert(control_ids.end(), my_controls.begin(),
                       my_controls.end());
  };

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) submitters.emplace_back(submitter, t);
  for (auto& t : submitters) t.join();
  server.wait_idle();

  // Every submitted job reached exactly one ending; tally them.
  const auto transcript = out.by_id();
  std::map<std::string, std::size_t> endings;
  for (const auto& id : job_ids) {
    const auto it = transcript.find(id);
    ASSERT_NE(it, transcript.end()) << id << " left no transcript";
    ++endings[check_lifecycle(id, it->second)];
  }
  // Control requests answer exactly once, synchronously.
  for (const auto& id : control_ids) {
    const auto it = transcript.find(id);
    ASSERT_NE(it, transcript.end()) << id;
    EXPECT_EQ(it->second.size(), 1u) << id;
    EXPECT_EQ(it->second.front().string_or("event", ""), "result") << id;
  }
  // Malformed lines produced their standalone empty-id rejections.
  const auto anonymous = transcript.find("");
  ASSERT_NE(anonymous, transcript.end());
  EXPECT_EQ(anonymous->second.size(), unaddressed_rejections.load());
  for (const auto& ev : anonymous->second) {
    EXPECT_EQ(ev.string_or("event", ""), "rejected");
  }

  // Global accounting: no leaked queue slots, no stuck jobs, counters add
  // up to the transcript.
  const ss::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.cancelled);
  EXPECT_EQ(stats.admitted,
            endings["result"] + endings["error"] + endings["cancelled"]);
  EXPECT_EQ(stats.completed, endings["result"]);
  EXPECT_EQ(stats.failed, endings["error"]);
  EXPECT_EQ(stats.cancelled, endings["cancelled"]);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.failed, 0u);       // fatal/internal/budget modes
  EXPECT_GT(stats.retries, 0u);      // flaky mode
  EXPECT_GT(stats.rejected_invalid, 0u);
  EXPECT_GT(stats.cache.hits, 0u);   // repeated RC netlists hit the cache
  EXPECT_LE(stats.cache.entries, config.cache_entries);

  // The server is still healthy: a fresh job runs clean after the storm.
  Transcript after;
  server.handle_line(R"({"id":"after","type":"ok"})", after.sink());
  server.wait_idle();
  EXPECT_EQ(after.count("after", "result"), 1u);
}

namespace {

/// Stream one RC netlist through a server under `config` and demand the
/// reassembled chunked waveform be bitwise-equal to the direct library
/// call. Shared by the thread-mode and process-isolation cases: the
/// client-visible numbers must not depend on where the handler ran.
void check_netlist_bitwise(ss::ServerConfig config) {
  config.chunk_rows = 7;  // force multi-chunk reassembly
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;

  Transcript out;
  server.handle_line(
      "{\"id\":\"rc\",\"type\":\"netlist\",\"netlist\":\"" + rc_netlist(0) +
          "\"}",
      out.sink());
  server.wait_idle();

  const auto events = out.events("rc");
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.back().string_or("event", ""), "result");

  // Reassemble the streamed chunks into columns.
  std::vector<std::string> columns;
  std::vector<std::vector<double>> data;
  std::size_t rows_seen = 0;
  for (const auto& ev : events) {
    if (ev.string_or("event", "") != "chunk") continue;
    ASSERT_EQ(ev.string_or("kind", ""), "tran");
    if (columns.empty()) {
      for (const auto& name : ev.get("columns")->items()) {
        columns.push_back(name.as_string());
        data.emplace_back();
      }
    }
    EXPECT_EQ(ev.number_or("row_offset", -1),
              static_cast<double>(rows_seen));  // monotone chunk order
    for (const auto& row : ev.get("rows")->items()) {
      ASSERT_EQ(row.items().size(), columns.size());
      for (std::size_t c = 0; c < columns.size(); ++c) {
        data[c].push_back(row.items()[c].as_number());
      }
      ++rows_seen;
    }
  }
  ASSERT_GT(rows_seen, 0u);
  ASSERT_FALSE(columns.empty());
  EXPECT_EQ(columns.front(), "time");

  // The direct library call under the same options the service arms:
  // default SimOptions plus dtmax = 10 * tstep (the handler's rule).
  std::string netlist_text = rc_netlist(0);
  for (std::size_t nl = netlist_text.find("\\n"); nl != std::string::npos;
       nl = netlist_text.find("\\n")) {
    netlist_text.replace(nl, 2, "\n");
  }
  const auto ast = softfet::netlist::parse(netlist_text);
  auto net = softfet::netlist::elaborate(ast);
  net.circuit->prepare();
  softfet::sim::SimOptions options;
  options.dtmax = net.tran->tstep * 10.0;
  const auto tran =
      softfet::sim::run_transient(*net.circuit, net.tran->tstop, options);

  ASSERT_EQ(rows_seen, tran.time.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const std::vector<double>& direct =
        c == 0 ? tran.time : tran.table.signal(columns[c]);
    for (std::size_t row = 0; row < rows_seen; ++row) {
      // Bitwise: %.17g JSON numbers round-trip doubles exactly.
      EXPECT_EQ(data[c][row], direct[row])
          << columns[c] << " row " << row << " differs from the direct call";
    }
  }
  const ss::JsonValue* summary = events.back().get("tran");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->number_or("accepted_steps", -1),
            static_cast<double>(tran.accepted_steps));
}

/// Kill-and-restart Monte-Carlo resume under `config` (state_dir is filled
/// in here, keyed by `tag` so concurrent cases never share a directory).
/// The resumed result must be bitwise-identical to the uninterrupted
/// direct library call, whichever isolation mode ran the attempts.
void check_mc_resume(ss::ServerConfig config, const std::string& tag) {
  const std::string state_dir =
      (fs::path(::testing::TempDir()) / ("softfet-soak-" + tag)).string();
  fs::remove_all(state_dir);

  const char* kJob =
      R"({"id":"mc1","type":"monte_carlo","samples":12,"seed":9,"lanes":1,)"
      R"("checkpoint_every":1,"timeout_seconds":240})";

  config.workers = 1;
  config.state_dir = state_dir;
  config.max_timeout_seconds = 300.0;

  // Phase 1: admit the job, let it make progress, then kill the daemon the
  // cooperative way a SIGTERM would (cancel in-flight, flush checkpoints,
  // keep journals).
  Transcript first;
  {
    const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
    server.handle_line(kJob, first.sink());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (first.count("mc1", "progress") == 0 &&
           first.count("mc1", "result") == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    server.shutdown(/*cancel_inflight=*/true);
  }
  ASSERT_EQ(first.count("mc1", "result"), 0u)
      << "job finished before the kill; nothing left to resume";
  ASSERT_EQ(first.count("mc1", "cancelled"), 1u);
  ASSERT_TRUE(fs::exists(state_dir));

  // Phase 2: a fresh daemon over the same state dir re-admits the journaled
  // job and finishes it from the checkpoint.
  Transcript second;
  ss::JsonValue result;
  {
    const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
    const std::size_t resumed = server.resume_journaled(second.sink());
    EXPECT_EQ(resumed, 1u);
    server.wait_idle();
    const auto events = second.events("mc1");
    ASSERT_FALSE(events.empty());
    result = events.back();
    EXPECT_EQ(server.stats().resumed, 1u);
    server.shutdown(/*cancel_inflight=*/false);
  }
  ASSERT_EQ(result.string_or("event", ""), "result");
  // Terminal success removed the job's journal and checkpoint.
  EXPECT_TRUE(fs::is_empty(state_dir));

  // The direct, uninterrupted library call with the same study parameters.
  softfet::cells::InverterTestbenchSpec base;
  base.input_rising = false;
  base.dut.ptm = softfet::devices::PtmParams{};
  softfet::core::MonteCarloSpec mc;
  mc.samples = 12;
  mc.seed = 9;
  mc.lanes = 1;
  mc.threads = 1;
  const auto direct = softfet::core::ptm_monte_carlo(base, mc, {});

  EXPECT_EQ(result.number_or("samples", -1),
            static_cast<double>(direct.samples));
  EXPECT_EQ(result.number_or("failed_samples", -1),
            static_cast<double>(direct.failed_samples));
  // Bitwise equality of every statistic: the resumed run must reproduce the
  // uninterrupted study exactly (%.17g survives the JSON round trip).
  EXPECT_EQ(result.number_or("imax_mean", -1), direct.imax_mean);
  EXPECT_EQ(result.number_or("imax_std", -1), direct.imax_std);
  EXPECT_EQ(result.number_or("imax_worst", -1), direct.imax_worst);
  EXPECT_EQ(result.number_or("delay_mean", -1), direct.delay_mean);
  EXPECT_EQ(result.number_or("delay_std", -1), direct.delay_std);
  EXPECT_EQ(result.number_or("delay_worst", -1), direct.delay_worst);
  EXPECT_EQ(result.number_or("fraction_below_baseline", -1),
            direct.fraction_below_baseline);

  fs::remove_all(state_dir);
}

}  // namespace

TEST(ServiceSoak, NetlistResultsAreBitwiseEqualToDirectCalls) {
  ss::ServerConfig config;
  config.workers = 1;
  check_netlist_bitwise(config);
}

TEST(ServiceSoak, KilledDaemonResumesMonteCarloBitwise) {
  ss::ServerConfig config;
  check_mc_resume(config, "thread");
}

// ---------------------------------------------------------------------------
// Hard-fault containment (process isolation). These cases fork sandboxed
// workers and then kill, crash, starve, and freeze them; they carry the
// service-soak label and the ServiceHardFault prefix so sanitizer CI can
// exclude them (fork + instrumentation interact badly) while the Release
// job runs them as a dedicated smoke step.
// ---------------------------------------------------------------------------

TEST(ServiceHardFault, MixedHardFaultWorkloadIsContained) {
  ss::ServerConfig config = process_config(3);
  config.queue_capacity = 256;
  config.worker_memory_bytes = worker_memory_cap();
  config.retry.max_attempts = 3;
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
  register_fault_handlers(server);
  register_hard_fault_handlers(server);

  Transcript out;
  const ss::Sink sink = out.sink();

  // 120 jobs: 10 aborts, 10 null derefs, 5 infinite loops, 5 allocation
  // bombs, 10 netlist sims, 10 flaky, 10 fatal, 70 healthy — every worker
  // slot dies several times with healthy traffic interleaved throughout.
  constexpr int kJobs = 120;
  std::vector<std::string> job_ids;
  std::map<std::string, std::string> kind_of;
  for (int i = 0; i < kJobs; ++i) {
    const std::string id = "h" + std::to_string(i);
    const std::string idq = "\"id\":\"" + id + "\"";
    std::string kind;
    switch (i % 12) {
      case 0:
        kind = "abort";
        server.handle_line(
            "{" + idq + ",\"type\":\"hard_fault\",\"mode\":\"abort\"}", sink);
        break;
      case 1:
        kind = "segv";
        server.handle_line(
            "{" + idq + ",\"type\":\"hard_fault\",\"mode\":\"segv\"}", sink);
        break;
      case 2:
        if (i % 24 == 2) {
          // The spin never heartbeat-starves (the worker's reader thread
          // keeps beating) — only the job deadline reclaims the slot, so
          // give it a small timeout.
          kind = "spin";
          server.handle_line("{" + idq +
                                 ",\"type\":\"hard_fault\",\"mode\":\"spin\","
                                 "\"timeout_seconds\":0.3}",
                             sink);
        } else {
          kind = "bomb";
          server.handle_line(
              "{" + idq + ",\"type\":\"hard_fault\",\"mode\":\"alloc_bomb\"}",
              sink);
        }
        break;
      case 3:
        kind = "netlist";
        server.handle_line("{" + idq + ",\"type\":\"netlist\",\"netlist\":\"" +
                               rc_netlist(i % 3) + "\"}",
                           sink);
        break;
      case 4:
        kind = "flaky";
        server.handle_line("{" + idq + ",\"type\":\"flaky\"}", sink);
        break;
      case 5:
        kind = "fatal";
        server.handle_line("{" + idq + ",\"type\":\"fatal\"}", sink);
        break;
      default:
        kind = "ok";
        server.handle_line(
            "{" + idq + ",\"type\":\"ok\",\"n\":" + std::to_string(i) + "}",
            sink);
        break;
    }
    job_ids.push_back(id);
    kind_of[id] = kind;
  }
  server.wait_idle();

  // Every job — including the ones whose worker died mid-attempt — keeps
  // the lifecycle contract: exactly one terminal, contiguous seq.
  const auto transcript = out.by_id();
  for (const auto& id : job_ids) {
    const auto it = transcript.find(id);
    ASSERT_NE(it, transcript.end()) << id << " left no transcript";
    const std::string last = check_lifecycle(id, it->second);
    const std::string& kind = kind_of[id];
    const ss::JsonValue& fin = it->second.back();
    if (kind == "abort" || kind == "segv") {
      // Crash forensics: the faulting signal and stage come from the
      // worker's own last-gasp record, not just the wait status.
      if (last != "error") {
        for (const auto& ev : it->second) {
          ADD_FAILURE() << id << " transcript: " << ev.dump();
        }
      }
      ASSERT_EQ(last, "error") << id;
      EXPECT_EQ(fin.string_or("code", ""), "worker_crashed") << id;
      const ss::JsonValue* crash = fin.get("crash");
      ASSERT_NE(crash, nullptr) << id;
      EXPECT_EQ(crash->string_or("reason", ""), "signal") << id;
      const int expected = kind == "abort" ? SIGABRT : SIGSEGV;
      EXPECT_EQ(crash->number_or("signal", -1),
                static_cast<double>(expected))
          << id;
      EXPECT_EQ(crash->string_or("signal_name", ""),
                kind == "abort" ? "SIGABRT" : "SIGSEGV")
          << id;
      EXPECT_EQ(crash->string_or("stage", ""), "handler:hard_fault") << id;
      EXPECT_EQ(crash->string_or("job", ""), id) << id;
    } else if (kind == "spin") {
      ASSERT_EQ(last, "error") << id;
      EXPECT_EQ(fin.string_or("code", ""), "worker_crashed") << id;
      const ss::JsonValue* crash = fin.get("crash");
      ASSERT_NE(crash, nullptr) << id;
      EXPECT_EQ(crash->string_or("reason", ""), "deadline_timeout") << id;
    } else if (kind == "bomb") {
      // Contained by RLIMIT_AS: the bomb degrades to std::bad_alloc inside
      // the worker and surfaces as an ordinary handler error — the worker
      // process survives to serve the next job.
      ASSERT_EQ(last, "error") << id;
    } else if (kind == "fatal") {
      ASSERT_EQ(last, "error") << id;
      EXPECT_NE(fin.string_or("code", ""), "worker_crashed") << id;
    } else if (kind == "ok") {
      // Bitwise identity for survivors: the echoed value is exactly the
      // submitted integer.
      ASSERT_EQ(last, "result") << id;
      EXPECT_EQ(fin.number_or("value", -1),
                static_cast<double>(std::stoi(id.substr(1))))
          << id;
    } else {
      ASSERT_EQ(last, "result") << id << " (" << kind << ")";
    }
  }

  const ss::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.cancelled);
  EXPECT_GE(stats.worker_crashes, 25u);  // 10 aborts + 10 segvs + 5 spins
  EXPECT_GE(stats.deadline_kills, 5u);
  EXPECT_GE(stats.workers_spawned, 3u);
  // Every crash but (at most) the final one per slot is followed by more
  // work, so nearly every death was also a respawn.
  EXPECT_GE(stats.workers_respawned, 22u);
  EXPECT_GT(stats.retries, 0u);  // flaky jobs retried across attempts

  // The daemon is still healthy after the storm.
  Transcript after;
  server.handle_line(R"({"id":"after","type":"ok","n":7})", after.sink());
  server.wait_idle();
  ASSERT_EQ(after.count("after", "result"), 1u);
}

TEST(ServiceHardFault, SigkilledWorkerLeavesOthersUntouchedAndRespawns) {
  ss::ServerConfig config = process_config(3);
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
  register_fault_handlers(server);
  register_hard_fault_handlers(server);

  // Occupy all three slots with long sleepers, then shoot slot 0's worker.
  Transcript out;
  const ss::Sink sink = out.sink();
  for (int i = 0; i < 3; ++i) {
    server.handle_line("{\"id\":\"s" + std::to_string(i) +
                           "\",\"type\":\"sleepy\",\"ms\":1500}",
                       sink);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (out.count("s0", "started") + out.count("s1", "started") +
                 out.count("s2", "started") <
             3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(server.supervisor(), nullptr);
  const std::vector<pid_t> pids = server.supervisor()->worker_pids();
  ASSERT_EQ(pids.size(), 3u);
  for (const pid_t pid : pids) ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
  server.wait_idle();

  // Exactly the job on the murdered worker errors — with SIGKILL forensics
  // — and the two bystander jobs finish untouched.
  int crashed = 0;
  int finished = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string id = "s" + std::to_string(i);
    const auto events = out.events(id);
    const std::string last = check_lifecycle(id, events);
    if (last == "error") {
      ++crashed;
      const ss::JsonValue& fin = events.back();
      EXPECT_EQ(fin.string_or("code", ""), "worker_crashed") << id;
      const ss::JsonValue* crash = fin.get("crash");
      ASSERT_NE(crash, nullptr) << id;
      EXPECT_EQ(crash->string_or("reason", ""), "signal") << id;
      EXPECT_EQ(crash->number_or("signal", -1),
                static_cast<double>(SIGKILL))
          << id;
      EXPECT_EQ(crash->string_or("signal_name", ""), "SIGKILL") << id;
    } else {
      EXPECT_EQ(last, "result") << id;
      ++finished;
    }
  }
  EXPECT_EQ(crashed, 1);
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(server.stats().worker_crashes, 1u);

  // A second full round occupies every slot again: slot 0 respawns (after
  // its backoff) and the surviving workers are reused as-is.
  Transcript second;
  for (int i = 0; i < 3; ++i) {
    server.handle_line("{\"id\":\"t" + std::to_string(i) +
                           "\",\"type\":\"sleepy\",\"ms\":1500}",
                       second.sink());
  }
  server.wait_idle();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(second.count("t" + std::to_string(i), "result"), 1u);
  }
  const std::vector<pid_t> after = server.supervisor()->worker_pids();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_NE(after[0], pids[0]);  // replaced
  EXPECT_EQ(after[1], pids[1]);  // untouched
  EXPECT_EQ(after[2], pids[2]);  // untouched
  EXPECT_GE(server.stats().workers_respawned, 1u);
}

TEST(ServiceHardFault, FrozenWorkerIsKilledForHeartbeatSilence) {
  ss::ServerConfig config = process_config(1);
  config.heartbeat_timeout_seconds = 0.5;
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
  register_fault_handlers(server);
  register_hard_fault_handlers(server);

  Transcript out;
  server.handle_line(R"({"id":"frozen","type":"freeze"})", out.sink());
  server.wait_idle();

  const auto events = out.events("frozen");
  ASSERT_EQ(check_lifecycle("frozen", events), "error");
  const ss::JsonValue& fin = events.back();
  EXPECT_EQ(fin.string_or("code", ""), "worker_crashed");
  const ss::JsonValue* crash = fin.get("crash");
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->string_or("reason", ""), "heartbeat_timeout");
  EXPECT_EQ(crash->number_or("signal", -1), static_cast<double>(SIGKILL));
  EXPECT_GE(server.stats().heartbeat_kills, 1u);

  // The slot recovers: the next job forks a fresh worker and completes.
  Transcript after;
  server.handle_line(R"({"id":"thaw","type":"ok","n":1})", after.sink());
  server.wait_idle();
  EXPECT_EQ(after.count("thaw", "result"), 1u);
}

TEST(ServiceHardFault, NetlistResultsBitwiseUnderProcessIsolation) {
  check_netlist_bitwise(process_config(1));
}

TEST(ServiceHardFault, KilledDaemonResumesBitwiseUnderProcessIsolation) {
  check_mc_resume(process_config(1), "process");
}
