// I/O buffer SSN testbench.
#include <gtest/gtest.h>

#include "cells/io_buffer.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace sc = softfet::cells;
namespace ss = softfet::sim;
namespace sm = softfet::measure;
using softfet::measure::Waveform;

TEST(IoBuffer, PadSwingsFullRail) {
  sc::IoBufferSpec spec;
  auto tb = sc::make_io_buffer_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform pad = Waveform::from_tran(result, tb.pad_signal);
  // Rising input -> 3 inverting stages -> falling pad.
  EXPECT_GT(pad.value(1e-9), 0.95);
  EXPECT_LT(pad.value(result.time.back()), 0.05);
}

TEST(IoBuffer, SwitchingBouncesInternalRails) {
  sc::IoBufferSpec spec;
  auto tb = sc::make_io_buffer_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform vssi = Waveform::from_tran(result, tb.vssi_signal);
  const Waveform vddi = Waveform::from_tran(result, tb.vddi_signal);
  // Quiet before the edge.
  EXPECT_LT(std::abs(vssi.value(1e-9)), 2e-3);
  // Bounce during the edge.
  const double gnd_bounce = sm::worst_bounce(vssi, 0.0);
  const double vcc_bounce = sm::worst_bounce(vddi, spec.vcc);
  EXPECT_GT(std::max(gnd_bounce, vcc_bounce), 20e-3);
  EXPECT_LT(std::max(gnd_bounce, vcc_bounce), 0.5);
}

TEST(IoBuffer, MoreSimultaneousBuffersMoreBounce) {
  sc::IoBufferSpec small;
  small.simultaneous = 1.0;
  auto tb1 = sc::make_io_buffer_testbench(small);
  const auto r1 = ss::run_transient(tb1.circuit, tb1.suggested_tstop);
  const double b1 =
      sm::worst_bounce(Waveform::from_tran(r1, tb1.vssi_signal), 0.0);

  sc::IoBufferSpec big;
  big.simultaneous = 4.0;
  auto tb4 = sc::make_io_buffer_testbench(big);
  const auto r4 = ss::run_transient(tb4.circuit, tb4.suggested_tstop);
  const double b4 =
      sm::worst_bounce(Waveform::from_tran(r4, tb4.vssi_signal), 0.0);

  EXPECT_GT(b4, 1.5 * b1);
}

TEST(IoBuffer, SoftVariantInstallsPtmOnFinalStage) {
  sc::IoBufferSpec spec;
  spec.ptm = sc::IoBufferSpec::default_driver_ptm();
  auto tb = sc::make_io_buffer_testbench(spec);
  ASSERT_NE(tb.ptm, nullptr);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  EXPECT_GE(tb.ptm->imt_count(), 1);
  // The pad still completes its transition.
  const Waveform pad = Waveform::from_tran(result, tb.pad_signal);
  EXPECT_LT(pad.value(result.time.back()), 0.05);
}

TEST(IoBuffer, FallingInputMirrors) {
  sc::IoBufferSpec spec;
  spec.input_rising = false;
  auto tb = sc::make_io_buffer_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform pad = Waveform::from_tran(result, tb.pad_signal);
  EXPECT_LT(pad.value(1e-9), 0.05);
  EXPECT_GT(pad.value(result.time.back()), 0.95);
}
