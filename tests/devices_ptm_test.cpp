// PTM hysteretic resistor: resistance law, DC hysteresis loop (paper
// Fig. 2), and soft (staircase) capacitor charging (paper Fig. 3).
#include <gtest/gtest.h>

#include <cmath>

#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;
using sd::Ptm;
using sd::PtmParams;
using softfet::measure::Waveform;

TEST(PtmParams, ValidateRejectsNonsense) {
  PtmParams p;
  p.r_met = p.r_ins;  // not less
  EXPECT_THROW(p.validate(), softfet::InvalidCircuitError);
  p = PtmParams{};
  p.v_mit = p.v_imt;
  EXPECT_THROW(p.validate(), softfet::InvalidCircuitError);
  p = PtmParams{};
  p.t_ptm = 0.0;
  EXPECT_THROW(p.validate(), softfet::InvalidCircuitError);
  EXPECT_NO_THROW(PtmParams{}.validate());
}

TEST(PtmParams, DerivedCurrentThresholds) {
  const PtmParams p;
  EXPECT_DOUBLE_EQ(p.i_imt(), p.v_imt / p.r_ins);
  EXPECT_DOUBLE_EQ(p.i_mit(), p.v_mit / p.r_met);
}

TEST(Ptm, ResistanceInterpolationLaws) {
  PtmParams p;  // default law: linear
  EXPECT_NEAR(Ptm::resistance_at(p, 0.0), p.r_ins, 1e-6 * p.r_ins);
  EXPECT_NEAR(Ptm::resistance_at(p, 1.0), p.r_met, 1e-6 * p.r_met);
  EXPECT_NEAR(Ptm::resistance_at(p, 0.5), 0.5 * (p.r_ins + p.r_met), 1.0);
  p.law = sd::PtmResistanceLaw::kLogarithmic;
  EXPECT_NEAR(Ptm::resistance_at(p, 0.0), p.r_ins, 1e-6 * p.r_ins);
  EXPECT_NEAR(Ptm::resistance_at(p, 1.0), p.r_met, 1e-6 * p.r_met);
  EXPECT_NEAR(Ptm::resistance_at(p, 0.5), std::sqrt(p.r_ins * p.r_met), 1e-3);
}

namespace {

/// V source -> series R -> PTM to ground: the paper's Fig. 2 test setup.
struct PtmIvFixture {
  ss::Circuit circuit;
  Ptm* ptm = nullptr;

  explicit PtmIvFixture(double r_series = 1e3,
                        const PtmParams& params = PtmParams{}) {
    const auto in = circuit.node("in");
    const auto mid = circuit.node("mid");
    circuit.add<sd::VSource>("Vs", in, ss::kGroundNode, sd::SourceSpec::dc(0.0));
    circuit.add<sd::Resistor>("Rs", in, mid, r_series);
    ptm = circuit.add<Ptm>("P1", mid, ss::kGroundNode, params);
  }
};

}  // namespace

TEST(Ptm, DcHysteresisLoop) {
  PtmIvFixture f;

  // Sweep up past the IMT trigger and back down: states must differ at the
  // same bias (hysteresis).
  std::vector<double> up;
  std::vector<double> down;
  for (int i = 0; i <= 60; ++i) up.push_back(i * 0.02);          // 0 -> 1.2
  for (int i = 60; i >= 0; --i) down.push_back(i * 0.02);        // 1.2 -> 0

  std::vector<double> all = up;
  all.insert(all.end(), down.begin(), down.end());
  const auto sweep = ss::dc_sweep(f.circuit, "Vs", all);
  const auto& v_mid = sweep.table.signal("v(mid)");
  const auto& s_phase = sweep.table.signal("s(p1)");

  // Early in the up sweep: insulating.
  EXPECT_DOUBLE_EQ(s_phase[5], 0.0);
  // At full bias: metallic (1k series + 500k ins: v_mid hits 0.4 when
  // Vs ~ 0.4008).
  EXPECT_DOUBLE_EQ(s_phase[60], 1.0);
  // On the way down at the same Vs where the up-sweep was insulating, the
  // device can still be metallic: check a mid bias point.
  const std::size_t up_idx = 19;            // Vs = 0.38 going up
  const std::size_t down_idx = all.size() - 1 - up_idx;  // Vs = 0.38 going down
  EXPECT_DOUBLE_EQ(s_phase[up_idx], 0.0);
  EXPECT_DOUBLE_EQ(s_phase[down_idx], 1.0);
  // Metallic branch pulls v_mid visibly lower (divider with the series R).
  EXPECT_LT(v_mid[down_idx], v_mid[up_idx] - 0.04);
  EXPECT_GE(f.ptm->imt_count(), 1);
  EXPECT_GE(f.ptm->mit_count(), 1);
}

TEST(Ptm, DcTransitionAtExpectedBias) {
  PtmIvFixture f(1e3);
  const PtmParams p = f.ptm->params();
  // v_mid = Vs * r_ins/(r_ins + 10k); IMT when v_mid = v_imt
  const double vs_trigger = p.v_imt * (p.r_ins + 1e3) / p.r_ins;
  std::vector<double> values;
  for (double v = 0.0; v <= 0.5; v += 0.002) values.push_back(v);
  const auto sweep = ss::dc_sweep(f.circuit, "Vs", values);
  const auto& s_phase = sweep.table.signal("s(p1)");
  // Find first metallic point.
  std::size_t first_met = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (s_phase[i] == 1.0) {
      first_met = i;
      break;
    }
  }
  ASSERT_LT(first_met, values.size());
  EXPECT_NEAR(values[first_met], vs_trigger, 0.01);
}

TEST(Ptm, SoftChargingStaircase) {
  // Paper Fig. 3: ramp -> PTM -> capacitor exhibits staircase charging with
  // multiple IMT/MIT pairs.
  ss::Circuit c;
  const auto in = c.node("in");
  const auto vc = c.node("vc");
  PtmParams p;
  p.v_imt = 0.3;  // lower threshold encourages multiple transitions
  p.v_mit = 0.15;
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 20e-12, 30e-12));
  auto* ptm = c.add<Ptm>("P1", in, vc, p);
  c.add<sd::Capacitor>("C1", vc, ss::kGroundNode, 0.5e-15);

  const auto result = ss::run_transient(c, 2e-9);
  const Waveform v_cap = Waveform::from_tran(result, "v(vc)");

  // The cap eventually reaches the rail.
  EXPECT_NEAR(v_cap.value(2e-9), 1.0, 0.02);
  // Multiple transitions occurred (staircase).
  EXPECT_GE(ptm->imt_count(), 1);
  EXPECT_GE(ptm->mit_count(), 1);
  EXPECT_GE(result.event_count, 2u);
  // Voltage across PTM never exceeded V_IMT by much (event resolution).
  const Waveform v_in = Waveform::from_tran(result, "v(in)");
  double worst = 0.0;
  for (std::size_t i = 0; i < v_in.size(); ++i) {
    worst = std::max(worst, v_in.y()[i] - v_cap.y()[i]);
  }
  // Finite T_PTM lets the voltage overshoot during the transition, but it
  // must stay bounded well below the full rail swing.
  EXPECT_LT(worst, p.v_imt + 0.3);
  EXPECT_GT(worst, p.v_imt);  // the threshold was actually reached
}

TEST(Ptm, StaircaseIsMonotoneForRisingRamp) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto vc = c.node("vc");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 10e-12, 30e-12));
  c.add<Ptm>("P1", in, vc, PtmParams{});
  c.add<sd::Capacitor>("C1", vc, ss::kGroundNode, 0.5e-15);
  const auto result = ss::run_transient(c, 1e-9);
  const auto& y = result.table.signal("v(vc)");
  for (std::size_t i = 1; i < y.size(); ++i) {
    EXPECT_GE(y[i], y[i - 1] - 1e-4);
  }
}

TEST(Ptm, SlowRampNoTransition) {
  // If the input rises much slower than R_INS*C, the cap tracks and the
  // PTM never fires (paper Section IV.D mechanism).
  ss::Circuit c;
  const auto in = c.node("in");
  const auto vc = c.node("vc");
  auto* ptm = c.add<Ptm>("P1", in, vc, PtmParams{});
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 0.0, 100e-9));
  c.add<sd::Capacitor>("C1", vc, ss::kGroundNode, 0.5e-15);
  // tau_ins = 500k * 0.5f = 0.25 ns << 100 ns ramp: v across stays tiny.
  const auto result = ss::run_transient(c, 150e-9);
  EXPECT_EQ(ptm->imt_count(), 0);
  EXPECT_EQ(result.event_count, 0u);
  const Waveform v_cap = Waveform::from_tran(result, "v(vc)");
  EXPECT_NEAR(v_cap.value(150e-9), 1.0, 0.01);
}

TEST(Ptm, FallingRampStaircasesDown) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto vc = c.node("vc");
  auto* ptm = c.add<Ptm>("P1", in, vc, PtmParams{});
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(1.0, 0.0, 50e-12, 30e-12));
  c.add<sd::Capacitor>("C1", vc, ss::kGroundNode, 0.5e-15);
  const auto result = ss::run_transient(c, 2e-9);
  const Waveform v_cap = Waveform::from_tran(result, "v(vc)");
  EXPECT_NEAR(v_cap.value(0.0), 1.0, 1e-3);   // starts charged (DC op)
  EXPECT_NEAR(v_cap.value(2e-9), 0.0, 0.02);  // fully discharged
  EXPECT_GE(ptm->imt_count(), 1);
}

TEST(Ptm, ProbesExposePhaseAndResistance) {
  ss::Circuit c;
  const auto in = c.node("in");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, sd::SourceSpec::dc(0.1));
  c.add<Ptm>("P1", in, ss::kGroundNode, PtmParams{});
  const auto op = ss::dc_operating_point(c);
  (void)op;
  ss::Circuit c2;  // transient probe signals present
  const auto in2 = c2.node("in");
  c2.add<sd::VSource>("Vin", in2, ss::kGroundNode, sd::SourceSpec::dc(0.1));
  c2.add<Ptm>("P1", in2, ss::kGroundNode, PtmParams{});
  const auto tr = ss::run_transient(c2, 1e-10);
  EXPECT_TRUE(tr.table.has("i(p1)"));
  EXPECT_TRUE(tr.table.has("r(p1)"));
  EXPECT_TRUE(tr.table.has("s(p1)"));
  const auto& r = tr.table.signal("r(p1)");
  EXPECT_NEAR(r.back(), PtmParams{}.r_ins, 1.0);
}
