#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace su = softfet::util;

TEST(Units, PlainNumbers) {
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("-3e-9"), -3e-9);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("0"), 0.0);
}

TEST(Units, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("500k"), 500e3);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("2.5n"), 2.5e-9);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("1u"), 1e-6);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("3f"), 3e-15);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("1G"), 1e9);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("2T"), 2e12);
}

TEST(Units, SuffixWithTrailingUnitLetters) {
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("5kOhm"), 5e3);
  // Bare unit letters with no scale prefix.
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("10V"), 10.0);
}

TEST(Units, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(*su::parse_spice_number("1K"), 1e3);
}

TEST(Units, MalformedReturnsNullopt) {
  EXPECT_FALSE(su::parse_spice_number("abc"));
  EXPECT_FALSE(su::parse_spice_number(""));
  EXPECT_FALSE(su::parse_spice_number("1.2.3x4"));
  EXPECT_FALSE(su::parse_spice_number("10k!"));
}

TEST(Units, OrThrowThrows) {
  EXPECT_THROW((void)su::parse_spice_number_or_throw("zz"), softfet::Error);
  EXPECT_DOUBLE_EQ(su::parse_spice_number_or_throw(" 5n "), 5e-9);
}

TEST(Units, FormatSi) {
  EXPECT_EQ(su::format_si(2.3e-11), "23p");
  EXPECT_EQ(su::format_si(1e3), "1k");
  EXPECT_EQ(su::format_si(0.0), "0");
  EXPECT_EQ(su::format_si(1.5, 4, "V"), "1.5V");
  EXPECT_EQ(su::format_si(-4.7e-6), "-4.7u");
}
