// Engine robustness: homotopy fallbacks, stiff circuits, degenerate
// inputs, logging plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/capacitor.hpp"
#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace t40 = softfet::devices::tech40;
using softfet::measure::Waveform;

TEST(Robustness, DiodeChainNeedsHomotopy) {
  // A long diode chain from a high supply is a classic direct-Newton
  // killer; gmin/source stepping must still land it.
  ss::Circuit c;
  auto prev = c.node("in");
  c.add<sd::VSource>("V1", prev, ss::kGroundNode, sd::SourceSpec::dc(6.0));
  for (int i = 0; i < 8; ++i) {
    const auto next = (i == 7) ? ss::kGroundNode
                               : c.node("d" + std::to_string(i));
    c.add<sd::Diode>("D" + std::to_string(i), prev, next);
    prev = next;
  }
  const auto op = ss::dc_operating_point(c);
  // Each junction drops ~0.75 V at these currents.
  EXPECT_NEAR(op.voltage("d0"), 6.0 * 7.0 / 8.0, 0.6);
}

TEST(Robustness, CrossCoupledLatchResolves) {
  // Bistable SRAM-style latch: the op must converge to one of the stable
  // states (not hang between them).
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto a = c.node("a");
  const auto b = c.node("b");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::Mosfet>("MPa", a, b, vdd, vdd, t40::pmos(), t40::min_pmos_dims());
  c.add<sd::Mosfet>("MNa", a, b, ss::kGroundNode, ss::kGroundNode,
                    t40::nmos(), t40::min_nmos_dims());
  c.add<sd::Mosfet>("MPb", b, a, vdd, vdd, t40::pmos(), t40::min_pmos_dims());
  c.add<sd::Mosfet>("MNb", b, a, ss::kGroundNode, ss::kGroundNode,
                    t40::nmos(), t40::min_nmos_dims());
  // A slight imbalance picks the state deterministically.
  c.add<sd::Resistor>("Rtilt", a, ss::kGroundNode, 10e6);
  const auto op = ss::dc_operating_point(c);
  const double va = op.voltage("a");
  const double vb = op.voltage("b");
  EXPECT_NEAR(va + vb, 1.0, 0.35);  // complementary-ish
}

TEST(Robustness, StiffTimeConstantMix) {
  // fs-scale RC hanging off a us-scale RC: the adaptive engine must
  // resolve both without millions of steps.
  ss::Circuit c;
  const auto in = c.node("in");
  const auto slow = c.node("slow");
  const auto fast = c.node("fast");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
  c.add<sd::Resistor>("Rslow", in, slow, 1e6);
  c.add<sd::Capacitor>("Cslow", slow, ss::kGroundNode, 1e-12);  // 1 us
  c.add<sd::Resistor>("Rfast", in, fast, 10.0);
  c.add<sd::Capacitor>("Cfast", fast, ss::kGroundNode, 1e-15);  // 10 fs
  const auto result = ss::run_transient(c, 5e-6);
  EXPECT_LT(result.accepted_steps, 20000u);
  const Waveform vslow = Waveform::from_tran(result, "v(slow)");
  EXPECT_NEAR(vslow.value(5e-6), 1.0 - std::exp(-(5e-6 - 1e-9) / 1e-6), 2e-2);
  const Waveform vfast = Waveform::from_tran(result, "v(fast)");
  EXPECT_NEAR(vfast.value(5e-6), 1.0, 1e-3);
}

TEST(Robustness, SineSourceDrivenRc) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  // 100 MHz sine into an RC with f3dB = 1.59 MHz: expect strong
  // attenuation and ~90 degree lag.
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::sine(0.5, 0.5, 100e6));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 100e-12);
  const auto result = ss::run_transient(c, 100e-9);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  const Waveform settled = vout.window(50e-9, 100e-9);
  const double swing = settled.max_value() - settled.min_value();
  const double expected =
      1.0 / std::sqrt(1.0 + std::pow(2.0 * M_PI * 100e6 * 1e3 * 100e-12, 2.0));
  EXPECT_NEAR(swing, expected, 0.25 * expected);
}

TEST(Robustness, EmptyishCircuitOpWorks) {
  ss::Circuit c;
  c.add<sd::VSource>("V1", c.node("a"), ss::kGroundNode,
                     sd::SourceSpec::dc(1.0));
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("a"), 1.0, 1e-9);
  EXPECT_NEAR(op.unknown("i(v1)"), 0.0, 1e-9);
}

TEST(Robustness, LogLevelsFilter) {
  using softfet::util::LogLevel;
  const auto old = softfet::util::log_level();
  softfet::util::set_log_level(LogLevel::kOff);
  EXPECT_EQ(softfet::util::log_level(), LogLevel::kOff);
  // These must be no-ops (nothing to assert beyond not crashing).
  softfet::util::log_debug("quiet");
  softfet::util::log_error("quiet");
  softfet::util::set_log_level(old);
}

TEST(Robustness, ParallelVoltageSourcesConflictIsSingular) {
  // Two ideal sources fighting across the same nodes: the MNA matrix is
  // singular; the engine must throw, not return garbage.
  ss::Circuit c;
  const auto a = c.node("a");
  c.add<sd::VSource>("V1", a, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::VSource>("V2", a, ss::kGroundNode, sd::SourceSpec::dc(2.0));
  EXPECT_THROW((void)ss::dc_operating_point(c), softfet::ConvergenceError);
}
