// Engine robustness: homotopy fallbacks, stiff circuits, degenerate
// inputs, logging plumbing, and the fault-injection proofs that every
// recovery-ladder rung fires and every diagnostics field is populated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "devices/capacitor.hpp"
#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "fault_injection.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace t40 = softfet::devices::tech40;
using softfet::measure::Waveform;
using softfet::testing::FaultDevice;
using softfet::testing::FaultMode;

namespace {

/// Ramp-driven RC bench with a FaultDevice attached to the output node.
/// The input ramps 0 -> 1 V between 100 ps and 130 ps; faults are armed in
/// [200 ps, 1 ns] unless the caller overrides the window.
struct FaultBench {
  ss::Circuit circuit;
  FaultDevice* fault = nullptr;
};

FaultBench make_fault_bench(FaultMode mode, int budget,
                            double t_start = 200e-12, double t_end = 1e-9,
                            double storm_dt = 10e-12) {
  FaultBench bench;
  auto& c = bench.circuit;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 100e-12, 30e-12));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-15);
  bench.fault =
      c.add<FaultDevice>("FLT1", out, mode, t_start, t_end, budget, storm_dt);
  return bench;
}

/// Attempts whose strategy matches `strategy`, optionally only successes.
int count_attempts(const softfet::SolverDiagnostics& diag,
                   const std::string& strategy, bool successes_only = false) {
  int count = 0;
  for (const auto& attempt : diag.attempts) {
    if (attempt.strategy == strategy &&
        (!successes_only || attempt.succeeded)) {
      ++count;
    }
  }
  return count;
}

}  // namespace

TEST(Robustness, DiodeChainNeedsHomotopy) {
  // A long diode chain from a high supply is a classic direct-Newton
  // killer; gmin/source stepping must still land it.
  ss::Circuit c;
  auto prev = c.node("in");
  c.add<sd::VSource>("V1", prev, ss::kGroundNode, sd::SourceSpec::dc(6.0));
  for (int i = 0; i < 8; ++i) {
    const auto next = (i == 7) ? ss::kGroundNode
                               : c.node("d" + std::to_string(i));
    c.add<sd::Diode>("D" + std::to_string(i), prev, next);
    prev = next;
  }
  const auto op = ss::dc_operating_point(c);
  // Each junction drops ~0.75 V at these currents.
  EXPECT_NEAR(op.voltage("d0"), 6.0 * 7.0 / 8.0, 0.6);
}

TEST(Robustness, CrossCoupledLatchResolves) {
  // Bistable SRAM-style latch: the op must converge to one of the stable
  // states (not hang between them).
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto a = c.node("a");
  const auto b = c.node("b");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::Mosfet>("MPa", a, b, vdd, vdd, t40::pmos(), t40::min_pmos_dims());
  c.add<sd::Mosfet>("MNa", a, b, ss::kGroundNode, ss::kGroundNode,
                    t40::nmos(), t40::min_nmos_dims());
  c.add<sd::Mosfet>("MPb", b, a, vdd, vdd, t40::pmos(), t40::min_pmos_dims());
  c.add<sd::Mosfet>("MNb", b, a, ss::kGroundNode, ss::kGroundNode,
                    t40::nmos(), t40::min_nmos_dims());
  // A slight imbalance picks the state deterministically.
  c.add<sd::Resistor>("Rtilt", a, ss::kGroundNode, 10e6);
  const auto op = ss::dc_operating_point(c);
  const double va = op.voltage("a");
  const double vb = op.voltage("b");
  EXPECT_NEAR(va + vb, 1.0, 0.35);  // complementary-ish
}

TEST(Robustness, StiffTimeConstantMix) {
  // fs-scale RC hanging off a us-scale RC: the adaptive engine must
  // resolve both without millions of steps.
  ss::Circuit c;
  const auto in = c.node("in");
  const auto slow = c.node("slow");
  const auto fast = c.node("fast");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
  c.add<sd::Resistor>("Rslow", in, slow, 1e6);
  c.add<sd::Capacitor>("Cslow", slow, ss::kGroundNode, 1e-12);  // 1 us
  c.add<sd::Resistor>("Rfast", in, fast, 10.0);
  c.add<sd::Capacitor>("Cfast", fast, ss::kGroundNode, 1e-15);  // 10 fs
  const auto result = ss::run_transient(c, 5e-6);
  EXPECT_LT(result.accepted_steps, 20000u);
  const Waveform vslow = Waveform::from_tran(result, "v(slow)");
  EXPECT_NEAR(vslow.value(5e-6), 1.0 - std::exp(-(5e-6 - 1e-9) / 1e-6), 2e-2);
  const Waveform vfast = Waveform::from_tran(result, "v(fast)");
  EXPECT_NEAR(vfast.value(5e-6), 1.0, 1e-3);
}

TEST(Robustness, SineSourceDrivenRc) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  // 100 MHz sine into an RC with f3dB = 1.59 MHz: expect strong
  // attenuation and ~90 degree lag.
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::sine(0.5, 0.5, 100e6));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 100e-12);
  const auto result = ss::run_transient(c, 100e-9);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  const Waveform settled = vout.window(50e-9, 100e-9);
  const double swing = settled.max_value() - settled.min_value();
  const double expected =
      1.0 / std::sqrt(1.0 + std::pow(2.0 * M_PI * 100e6 * 1e3 * 100e-12, 2.0));
  EXPECT_NEAR(swing, expected, 0.25 * expected);
}

TEST(Robustness, EmptyishCircuitOpWorks) {
  ss::Circuit c;
  c.add<sd::VSource>("V1", c.node("a"), ss::kGroundNode,
                     sd::SourceSpec::dc(1.0));
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("a"), 1.0, 1e-9);
  EXPECT_NEAR(op.unknown("i(v1)"), 0.0, 1e-9);
}

TEST(Robustness, LogLevelsFilter) {
  using softfet::util::LogLevel;
  const auto old = softfet::util::log_level();
  softfet::util::set_log_level(LogLevel::kOff);
  EXPECT_EQ(softfet::util::log_level(), LogLevel::kOff);
  // These must be no-ops (nothing to assert beyond not crashing).
  softfet::util::log_debug("quiet");
  softfet::util::log_error("quiet");
  softfet::util::set_log_level(old);
}

TEST(Robustness, ParallelVoltageSourcesConflictIsSingular) {
  // Two ideal sources fighting across the same nodes: the MNA matrix is
  // singular; the engine must throw, not return garbage.
  ss::Circuit c;
  const auto a = c.node("a");
  c.add<sd::VSource>("V1", a, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::VSource>("V2", a, ss::kGroundNode, sd::SourceSpec::dc(2.0));
  EXPECT_THROW((void)ss::dc_operating_point(c), softfet::ConvergenceError);
}

// ---------------------------------------------------------------------------
// Recovery-ladder fault injection: each test arms a FaultDevice with the
// exact sabotage budget that forces one specific rung to be the cure (see
// fault_injection.hpp for the budget arithmetic).
// ---------------------------------------------------------------------------

TEST(RecoveryLadder, DtShrinkRungHandlesATransientGlitch) {
  // Default escalation threshold: a single poisoned solve is cured by the
  // cheap dt-shrink rung before any escalated rung runs.
  auto bench = make_fault_bench(FaultMode::kNanResidual, /*budget=*/1);
  const auto result = ss::run_transient(bench.circuit, 1e-9, {});
  EXPECT_EQ(bench.fault->injections(), 1);
  EXPECT_EQ(result.recovered_steps, 0u);  // no escalated rung needed
  EXPECT_GE(count_attempts(result.diagnostics, "dt_shrink"), 1);
  EXPECT_GE(count_attempts(result.diagnostics, "dt_shrink", true), 1);
  EXPECT_EQ(count_attempts(result.diagnostics, "predictor_reset"), 0);
}

TEST(RecoveryLadder, PredictorResetRungRecovers) {
  auto bench = make_fault_bench(FaultMode::kNanResidual, /*budget=*/1);
  ss::SimOptions options;
  options.recovery_escalate_after = 1;  // escalate on the first failure
  const auto result = ss::run_transient(bench.circuit, 1e-9, options);
  EXPECT_EQ(result.recovered_steps, 1u);
  EXPECT_EQ(count_attempts(result.diagnostics, "predictor_reset", true), 1);
  EXPECT_EQ(count_attempts(result.diagnostics, "gmin_ramp"), 0);
  EXPECT_EQ(count_attempts(result.diagnostics, "source_ramp"), 0);
}

TEST(RecoveryLadder, GminRampRungRecovers) {
  // Budget 2: the escalation's predictor-reset solve is also poisoned, so
  // the gmin ramp is the first rung that can succeed.
  auto bench = make_fault_bench(FaultMode::kNanResidual, /*budget=*/2);
  ss::SimOptions options;
  options.recovery_escalate_after = 1;
  const auto result = ss::run_transient(bench.circuit, 1e-9, options);
  EXPECT_EQ(result.recovered_steps, 1u);
  EXPECT_EQ(count_attempts(result.diagnostics, "predictor_reset"), 1);
  EXPECT_EQ(count_attempts(result.diagnostics, "predictor_reset", true), 0);
  EXPECT_EQ(count_attempts(result.diagnostics, "gmin_ramp", true), 1);
  EXPECT_EQ(count_attempts(result.diagnostics, "source_ramp"), 0);
}

TEST(RecoveryLadder, SourceRampRungRecovers) {
  // Budget 3 also poisons the first gmin-ramp solve: only the source ramp
  // is left standing.
  auto bench = make_fault_bench(FaultMode::kNanResidual, /*budget=*/3);
  ss::SimOptions options;
  options.recovery_escalate_after = 1;
  const auto result = ss::run_transient(bench.circuit, 1e-9, options);
  EXPECT_EQ(result.recovered_steps, 1u);
  EXPECT_EQ(count_attempts(result.diagnostics, "predictor_reset", true), 0);
  EXPECT_EQ(count_attempts(result.diagnostics, "gmin_ramp", true), 0);
  EXPECT_EQ(count_attempts(result.diagnostics, "source_ramp", true), 1);
}

TEST(RecoveryLadder, MinimumDtStallThrowsWithFullDiagnostics) {
  // An unlimited NaN source is unrecoverable: the engine must shrink to
  // dtmin, run the ladder once more, and give up with a structured report
  // naming the node, the blamed device, and the failure time in
  // engineering notation (not "t=0.000000").
  auto bench = make_fault_bench(FaultMode::kNanResidual, /*budget=*/-1);
  try {
    (void)ss::run_transient(bench.circuit, 1e-9, {});
    FAIL() << "expected the unrecoverable fault to throw";
  } catch (const softfet::ConvergenceError& e) {
    ASSERT_TRUE(e.has_diagnostics());
    const auto& d = e.diagnostics();
    EXPECT_EQ(d.analysis, "transient");
    EXPECT_NE(d.failure.find("minimum timestep"), std::string::npos);
    EXPECT_EQ(d.worst_node, "v(out)");
    EXPECT_EQ(d.worst_device, "FLT1");
    // The fault arms at 200 ps; the last accepted time cannot pass it.
    EXPECT_GT(d.time, 150e-12);
    EXPECT_LT(d.time, 210e-12);
    EXPECT_GT(d.last_dt, 0.0);
    EXPECT_GE(count_attempts(d, "dt_shrink"), 1);
    // The at-dtmin escalation runs the full ladder at least once.
    EXPECT_GE(count_attempts(d, "predictor_reset"), 1);
    EXPECT_GE(count_attempts(d, "gmin_ramp"), 1);
    EXPECT_GE(count_attempts(d, "source_ramp"), 1);
    // Engineering-notation message: picoseconds, not a six-decimal zero.
    const std::string what = e.what();
    EXPECT_NE(what.find("ps"), std::string::npos) << what;
    EXPECT_EQ(what.find("0.000000"), std::string::npos) << what;
  }
}

TEST(RecoveryLadder, EscalationCanBeDisabled) {
  auto bench = make_fault_bench(FaultMode::kNanResidual, /*budget=*/-1);
  ss::SimOptions options;
  options.recovery_escalate_after = 0;  // shrink-only ladder
  try {
    (void)ss::run_transient(bench.circuit, 1e-9, options);
    FAIL() << "expected the unrecoverable fault to throw";
  } catch (const softfet::ConvergenceError& e) {
    ASSERT_TRUE(e.has_diagnostics());
    EXPECT_EQ(count_attempts(e.diagnostics(), "predictor_reset"), 0);
    EXPECT_EQ(count_attempts(e.diagnostics(), "gmin_ramp"), 0);
    EXPECT_GE(count_attempts(e.diagnostics(), "dt_shrink"), 1);
  }
}

TEST(RecoveryLadder, SingularStampNamesTheOffendingUnknown) {
  // A structurally zero matrix row (a device that claims a branch unknown
  // and never stamps it) must surface the unknown's label through every
  // homotopy rung's failure.
  auto bench =
      make_fault_bench(FaultMode::kSingularRow, /*budget=*/-1, 0.0, 1.0);
  try {
    (void)ss::dc_operating_point(bench.circuit);
    FAIL() << "expected the singular stamp to defeat every DC homotopy";
  } catch (const softfet::ConvergenceError& e) {
    ASSERT_TRUE(e.has_diagnostics());
    const auto& d = e.diagnostics();
    EXPECT_EQ(d.analysis, "dc operating point");
    EXPECT_EQ(d.worst_node, "i(flt1)");
    EXPECT_NE(d.failure.find("singular"), std::string::npos);
    EXPECT_EQ(count_attempts(d, "direct_newton"), 1);
    EXPECT_EQ(count_attempts(d, "gmin_stepping"), 1);
    EXPECT_EQ(count_attempts(d, "source_stepping"), 1);
  }
}

TEST(RecoveryLadder, NanJacobianIsCaughtByTheUpdateGuard) {
  // Jacobian poison passes the residual check but must still fail the
  // solve fast (non-finite update or singular factorization), and a
  // 1-solve budget must be absorbed without losing the run.
  auto bench = make_fault_bench(FaultMode::kNanJacobian, /*budget=*/1);
  const auto result = ss::run_transient(bench.circuit, 1e-9, {});
  EXPECT_EQ(bench.fault->injections(), 1);
  EXPECT_GE(count_attempts(result.diagnostics, "dt_shrink", true), 1);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(vout.value(1e-9), 1.0, 1e-2);
}

TEST(RecoveryLadder, EventStormIsSurvivedAtFullAccuracy) {
  // A device reporting an event every 2 ps across [200 ps, 400 ps] forces
  // a dense burst of step cuts; the engine must neither hang nor lose the
  // waveform. (Spacing is chosen below the engine's dtmax so events land
  // inside candidate steps.)
  auto bench = make_fault_bench(FaultMode::kEventStorm, /*budget=*/-1,
                                200e-12, 400e-12, 2e-12);
  const auto result = ss::run_transient(bench.circuit, 1e-9, {});
  EXPECT_GE(result.event_count, 10u);       // ~100 storm boundaries
  EXPECT_LT(result.accepted_steps, 5000u);  // bounded work
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(vout.value(1e-9), 1.0, 1e-2);
}
