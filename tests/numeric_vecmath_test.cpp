// Kernel contract of numeric/vecmath: the documented ULP bounds vs libm
// over the exact clamp domains the devices feed them (±Diode::kExpCap,
// the vswitch ±60 sigmoid clamp, subnormals, -0.0, infinities), NaN
// propagation, and the array forms returning bit-identical results to the
// scalar kernels — the property that makes relaxed-mode results
// independent of lane packing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "numeric/vecmath.hpp"

namespace vm = softfet::numeric::vecmath;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Documented bounds (vecmath.hpp header contract).
constexpr std::uint64_t kPrimitiveUlp = 4;
constexpr std::uint64_t kCompositeUlp = 8;

/// ULP distance between two finite doubles via the ordered-integer map
/// (monotone over each sign, adjacent floats differ by 1). Returns a huge
/// value when the signs or classes disagree, so mismatched zeros/infs fail.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b))
               ? 0
               : std::numeric_limits<std::uint64_t>::max();
  }
  const auto ordered = [](double x) {
    auto bits = static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(x));
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                 : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

/// Dense deterministic sweep of [lo, hi]: uniform grid plus random fill.
[[nodiscard]] std::vector<double> sweep(double lo, double hi, std::size_t n,
                                        unsigned seed) {
  std::vector<double> xs;
  xs.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(n - 1));
  }
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(dist(rng));
  return xs;
}

/// The special values every kernel must handle: zeros of both signs,
/// subnormals, the smallest/largest normals, and the clamp corners.
[[nodiscard]] std::vector<double> special_values() {
  return {0.0,
          -0.0,
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          1e-308,  // subnormal after 1+x rounding games
          std::numeric_limits<double>::min(),
          -std::numeric_limits<double>::min(),
          std::numeric_limits<double>::epsilon(),
          -std::numeric_limits<double>::epsilon(),
          30.0,   // mosfet softplus asymptote switch
          -30.0,
          60.0,   // vswitch clamp corners
          -60.0,
          80.0,   // diode kExpCap
          -80.0,
          vm::kExpArgMax,
          vm::kExpArgMin,
          709.9,   // just past the overflow boundary
          -745.2,  // just past the underflow boundary
          kInf,
          -kInf};
}

}  // namespace

TEST(VecmathKernels, ExpWithinDocumentedUlpOfLibm) {
  // Union of every domain a device can feed exp after its own clamps:
  // diode caps at +80, vswitch at ±60, EKV softplus args land in ±~400
  // after the 1/nvt2 scaling; sweep the full non-over/underflow range.
  for (const double x : sweep(-745.0, 709.7, 20000, 101)) {
    const double got = vm::exp_s(x);
    const double want = std::exp(x);
    ASSERT_LE(ulp_distance(got, want), kPrimitiveUlp)
        << "exp_s(" << x << ") = " << got << " vs libm " << want;
  }
  for (const double x : special_values()) {
    const double got = vm::exp_s(x);
    const double want = std::exp(x);
    ASSERT_LE(ulp_distance(got, want), kPrimitiveUlp) << "exp_s(" << x << ")";
  }
  EXPECT_TRUE(std::isnan(vm::exp_s(kNan)));
  EXPECT_EQ(vm::exp_s(kInf), kInf);
  EXPECT_EQ(vm::exp_s(-kInf), 0.0);
  EXPECT_EQ(vm::exp_s(0.0), 1.0);
  EXPECT_EQ(vm::exp_s(-0.0), 1.0);
}

TEST(VecmathKernels, Log1pWithinDocumentedUlpOfLibm) {
  // log1p sees exp_s outputs in (0, 1] from softplus, but test the full
  // domain including the singular approach to -1 and huge arguments.
  for (const double x : sweep(-0.9999999, 10.0, 20000, 202)) {
    ASSERT_LE(ulp_distance(vm::log1p_s(x), std::log1p(x)), kPrimitiveUlp)
        << "log1p_s(" << x << ")";
  }
  for (const double x : sweep(-1.0 + 1e-14, -1.0 + 1e-10, 2000, 203)) {
    ASSERT_LE(ulp_distance(vm::log1p_s(x), std::log1p(x)), kPrimitiveUlp)
        << "log1p_s(" << x << ") near the singularity";
  }
  for (const double x : sweep(10.0, 1e300, 2000, 204)) {
    ASSERT_LE(ulp_distance(vm::log1p_s(x), std::log1p(x)), kPrimitiveUlp)
        << "log1p_s(" << x << ") huge";
  }
  for (const double x : special_values()) {
    if (x < -1.0) continue;  // NaN domain, checked below
    ASSERT_LE(ulp_distance(vm::log1p_s(x), std::log1p(x)), kPrimitiveUlp)
        << "log1p_s(" << x << ")";
  }
  // Domain edges must match libm exactly.
  EXPECT_EQ(vm::log1p_s(-1.0), -kInf);
  EXPECT_TRUE(std::isnan(vm::log1p_s(-1.5)));
  EXPECT_TRUE(std::isnan(vm::log1p_s(-kInf)));
  EXPECT_TRUE(std::isnan(vm::log1p_s(kNan)));
  EXPECT_EQ(vm::log1p_s(kInf), kInf);
  // ±0 keeps its sign (libm contract).
  EXPECT_EQ(std::signbit(vm::log1p_s(-0.0)), true);
  EXPECT_EQ(std::signbit(vm::log1p_s(0.0)), false);
  // Subnormal results round like libm.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_LE(ulp_distance(vm::log1p_s(tiny), std::log1p(tiny)), kPrimitiveUlp);
}

TEST(VecmathKernels, Expm1WithinDocumentedUlpOfLibm) {
  for (const double x : sweep(-40.0, 40.0, 20000, 303)) {
    ASSERT_LE(ulp_distance(vm::expm1_s(x), std::expm1(x)), kPrimitiveUlp)
        << "expm1_s(" << x << ")";
  }
  for (const double x : sweep(-1e-8, 1e-8, 4000, 304)) {
    ASSERT_LE(ulp_distance(vm::expm1_s(x), std::expm1(x)), kPrimitiveUlp)
        << "expm1_s(" << x << ") tiny";
  }
  for (const double x : special_values()) {
    ASSERT_LE(ulp_distance(vm::expm1_s(x), std::expm1(x)), kPrimitiveUlp)
        << "expm1_s(" << x << ")";
  }
  EXPECT_TRUE(std::isnan(vm::expm1_s(kNan)));
  // -0.0 must come back as -0.0 (the small path returns x itself there).
  EXPECT_TRUE(std::signbit(vm::expm1_s(-0.0)));
}

TEST(VecmathKernels, SoftplusSigmoidWithinCompositeBound) {
  // Reference in long double through the same overflow-safe identities the
  // scalar devices use; the composite bound allows the one extra rounding
  // of the fused form.
  const auto softplus_ref = [](double x) {
    if (std::isnan(x)) return static_cast<long double>(x);
    const long double ax = x < 0 ? -static_cast<long double>(x) : x;
    const long double pos = x > 0 ? x : 0.0L;
    return pos + std::log1p(std::exp(-ax));
  };
  const auto sigmoid_ref = [](double x) {
    const long double e = std::exp(-(x < 0 ? -static_cast<long double>(x) : x));
    return x >= 0 ? 1.0L / (1.0L + e) : e / (1.0L + e);
  };

  auto domain = sweep(-800.0, 800.0, 20000, 405);
  const auto extra = sweep(-5.0, 5.0, 4000, 406);  // dense near the knee
  domain.insert(domain.end(), extra.begin(), extra.end());
  const auto specials = special_values();
  domain.insert(domain.end(), specials.begin(), specials.end());

  for (const double x : domain) {
    const double sp = vm::softplus_s(x);
    const double sg = vm::sigmoid_s(x);
    ASSERT_LE(ulp_distance(sp, static_cast<double>(softplus_ref(x))),
              kCompositeUlp)
        << "softplus_s(" << x << ")";
    ASSERT_LE(ulp_distance(sg, static_cast<double>(sigmoid_ref(x))),
              kCompositeUlp)
        << "sigmoid_s(" << x << ")";
    // The fused form must agree with the separate kernels bitwise: the
    // mosfet lane path calls the fused kernel while documentation and
    // fallback reasoning use the separate ones.
    double fsp = 0.0;
    double fsg = 0.0;
    vm::softplus_sigmoid_s(x, fsp, fsg);
    ASSERT_EQ(std::memcmp(&fsp, &sp, sizeof sp), 0) << "fused softplus " << x;
    ASSERT_EQ(std::memcmp(&fsg, &sg, sizeof sg), 0) << "fused sigmoid " << x;
  }

  double sp = 0.0;
  double sg = 0.0;
  vm::softplus_sigmoid_s(kNan, sp, sg);
  EXPECT_TRUE(std::isnan(sp));
  EXPECT_TRUE(std::isnan(sg));
  EXPECT_TRUE(std::isnan(vm::softplus_s(kNan)));
  EXPECT_TRUE(std::isnan(vm::sigmoid_s(kNan)));
  // Saturation endpoints.
  EXPECT_EQ(vm::sigmoid_s(kInf), 1.0);
  EXPECT_EQ(vm::sigmoid_s(-kInf), 0.0);
  EXPECT_EQ(vm::softplus_s(-kInf), 0.0);
  EXPECT_EQ(vm::softplus_s(kInf), kInf);
}

TEST(VecmathKernels, ExpCappedMatchesDiodeGuard) {
  // The diode's scalar guard, verbatim (devices/diode.cpp exp_safe).
  constexpr double kCap = 80.0;  // devices::Diode::kExpCap
  const auto exp_safe = [](double x) {
    return x <= kCap ? std::exp(x) : std::exp(kCap) * (1.0 + (x - kCap));
  };
  const auto exp_safe_deriv = [](double x) {
    return std::exp(x <= kCap ? x : kCap);
  };
  auto domain = sweep(-200.0, 200.0, 20000, 507);
  const auto specials = special_values();
  domain.insert(domain.end(), specials.begin(), specials.end());
  for (const double x : domain) {
    double e = 0.0;
    double de = 0.0;
    vm::exp_capped_s(x, kCap, e, de);
    ASSERT_LE(ulp_distance(e, exp_safe(x)), kCompositeUlp)
        << "exp_capped value at " << x;
    ASSERT_LE(ulp_distance(de, exp_safe_deriv(x)), kCompositeUlp)
        << "exp_capped deriv at " << x;
  }
  // NaN contract mirrors the scalar guard: value NaN, derivative finite.
  double e = 0.0;
  double de = 0.0;
  vm::exp_capped_s(kNan, kCap, e, de);
  EXPECT_TRUE(std::isnan(e));
  EXPECT_LE(ulp_distance(de, std::exp(kCap)), kCompositeUlp);
}

// The lane-packing independence property: every array form must produce
// exactly the scalar kernel's bits for every element, for every length
// (covering full SIMD blocks, ragged tails, and the scalar fallback).
TEST(VecmathKernels, ArrayFormsMatchScalarKernelsBitwise) {
  std::mt19937 rng(909);
  std::uniform_real_distribution<double> dist(-90.0, 90.0);
  for (const std::size_t n : {1u, 3u, 7u, 8u, 64u, 127u, 128u, 129u, 1000u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = dist(rng);
    // Salt in specials at deterministic positions.
    const auto specials = special_values();
    for (std::size_t i = 0; i < n && i < specials.size(); i += 3) {
      x[i] = specials[i % specials.size()];
    }

    std::vector<double> y(n), sp(n), sg(n), e(n), de(n);
    SCOPED_TRACE("n=" + std::to_string(n));

    vm::exp_v(x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double want = vm::exp_s(x[i]);
      ASSERT_EQ(std::memcmp(&y[i], &want, sizeof want), 0) << "exp_v[" << i << "]";
    }
    vm::expm1_v(x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double want = vm::expm1_s(x[i]);
      ASSERT_EQ(std::memcmp(&y[i], &want, sizeof want), 0)
          << "expm1_v[" << i << "]";
    }
    vm::log1p_v(x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double want = vm::log1p_s(x[i]);
      ASSERT_EQ(std::memcmp(&y[i], &want, sizeof want), 0)
          << "log1p_v[" << i << "]";
    }
    vm::softplus_v(x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double want = vm::softplus_s(x[i]);
      ASSERT_EQ(std::memcmp(&y[i], &want, sizeof want), 0)
          << "softplus_v[" << i << "]";
    }
    vm::sigmoid_v(x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double want = vm::sigmoid_s(x[i]);
      ASSERT_EQ(std::memcmp(&y[i], &want, sizeof want), 0)
          << "sigmoid_v[" << i << "]";
    }
    vm::softplus_sigmoid_v(x.data(), sp.data(), sg.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      double wsp = 0.0;
      double wsg = 0.0;
      vm::softplus_sigmoid_s(x[i], wsp, wsg);
      ASSERT_EQ(std::memcmp(&sp[i], &wsp, sizeof wsp), 0)
          << "softplus_sigmoid_v sp[" << i << "]";
      ASSERT_EQ(std::memcmp(&sg[i], &wsg, sizeof wsg), 0)
          << "softplus_sigmoid_v sg[" << i << "]";
    }
    vm::exp_capped_v(x.data(), 80.0, e.data(), de.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      double we = 0.0;
      double wde = 0.0;
      vm::exp_capped_s(x[i], 80.0, we, wde);
      ASSERT_EQ(std::memcmp(&e[i], &we, sizeof we), 0)
          << "exp_capped_v e[" << i << "]";
      ASSERT_EQ(std::memcmp(&de[i], &wde, sizeof wde), 0)
          << "exp_capped_v de[" << i << "]";
    }
  }
}

// Determinism of the kernels themselves: same input, same bits, every call
// (no internal state, no environment dependence) — a cheap canary for the
// "relaxed mode is still deterministic" claim.
TEST(VecmathKernels, KernelsAreStateless) {
  const auto xs = sweep(-100.0, 100.0, 1000, 777);
  for (const double x : xs) {
    const double a = vm::exp_s(x);
    const double b = vm::exp_s(x);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0);
  }
  std::vector<double> y1(xs.size()), y2(xs.size());
  vm::exp_v(xs.data(), y1.data(), xs.size());
  vm::exp_v(xs.data(), y2.data(), xs.size());
  EXPECT_EQ(std::memcmp(y1.data(), y2.data(), xs.size() * sizeof(double)), 0);
}
