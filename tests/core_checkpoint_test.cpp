// Checkpoint/resume for the batch drivers: the payload codec is bitwise
// exact, a cancelled Monte-Carlo run resumes to statistics identical to an
// uninterrupted run, and a finished sweep reloads without re-simulating.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/checkpointing.hpp"
#include "core/sweeps.hpp"
#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace sc = softfet::core;
namespace sd = softfet::devices;
namespace su = softfet::util;

namespace {

softfet::cells::InverterTestbenchSpec soft_base() {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};
  return spec;
}

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

[[nodiscard]] bool same_bits(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b && std::signbit(a) == std::signbit(b);
}

}  // namespace

TEST(CheckpointCodec, DoubleRoundTripIsBitwise) {
  const double cases[] = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -1.23456789e-300,
      5e-324,  // smallest denormal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  for (const double value : cases) {
    const double decoded = sc::decode_double(sc::encode_double(value));
    EXPECT_TRUE(same_bits(decoded, value)) << sc::encode_double(value);
  }
  EXPECT_TRUE(std::isnan(
      sc::decode_double(sc::encode_double(std::nan("")))));
}

TEST(CheckpointCodec, DoubleRejectsMalformedTokens) {
  EXPECT_THROW((void)sc::decode_double("abc"), softfet::Error);
  EXPECT_THROW((void)sc::decode_double(""), softfet::Error);
  EXPECT_THROW((void)sc::decode_double("0x1p+2junk"), softfet::Error);
}

TEST(CheckpointCodec, MetricsRoundTripDropsOnlyWaveforms) {
  sc::TransitionMetrics m;
  m.i_max = 123.456e-6;
  m.max_didt = -7.7e6;
  m.delay = 13e-12;
  m.output_transition = 1.0 / 3.0 * 1e-12;
  m.q_short = 4.5e-18;
  m.q_output = 6.7e-15;
  m.energy = 8.9e-15;
  m.imt_count = 3;
  m.mit_count = 2;
  m.tran.time = {0.0, 1e-12};  // must NOT survive the round trip

  const sc::TransitionMetrics r = sc::decode_metrics(sc::encode_metrics(m));
  EXPECT_TRUE(same_bits(r.i_max, m.i_max));
  EXPECT_TRUE(same_bits(r.max_didt, m.max_didt));
  EXPECT_TRUE(same_bits(r.delay, m.delay));
  EXPECT_TRUE(same_bits(r.output_transition, m.output_transition));
  EXPECT_TRUE(same_bits(r.q_short, m.q_short));
  EXPECT_TRUE(same_bits(r.q_output, m.q_output));
  EXPECT_TRUE(same_bits(r.energy, m.energy));
  EXPECT_EQ(r.imt_count, 3);
  EXPECT_EQ(r.mit_count, 2);
  EXPECT_TRUE(r.tran.time.empty());
}

TEST(CheckpointCodec, FailureRoundTrip) {
  sc::FailureRecord failure;
  failure.index = 99;  // implied by the slot, not the payload
  failure.context = "sample 17 (sigma 0.05)";
  failure.message = "line 1:\n\ttwo words % escaped";
  failure.retried = true;
  failure.budget_stop = su::BudgetStop::kWallClock;

  const sc::FailureRecord r =
      sc::decode_failure(17, sc::encode_failure(failure));
  EXPECT_EQ(r.index, 17u);
  EXPECT_EQ(r.context, failure.context);
  EXPECT_EQ(r.message, failure.message);
  EXPECT_TRUE(r.retried);
  EXPECT_EQ(r.budget_stop, su::BudgetStop::kWallClock);
}

TEST(CheckpointCodec, FailureRejectsMalformedTails) {
  EXPECT_THROW((void)sc::decode_failure(0, "1"), softfet::Error);
  EXPECT_THROW((void)sc::decode_failure(0, "1 99 ctx msg"), softfet::Error);
}

TEST(MonteCarloCheckpoint, CancelledRunResumesBitwise) {
  // The acceptance scenario: kill a run mid-flight (cooperative cancel at
  // sample 4 of 8), then resume against the checkpoint. The resumed
  // statistics must equal an uninterrupted run bit for bit, and the resume
  // must only simulate the samples the first run never finished.
  TempFile file("mc_resume.ckpt");
  sc::MonteCarloSpec mc;
  mc.samples = 8;
  mc.seed = 42;
  mc.threads = 1;  // deterministic kill point
  mc.checkpoint.path = file.path;
  mc.checkpoint.flush_every = 1;

  su::CancelToken token;
  softfet::sim::SimOptions options;
  options.budget.cancel = &token;

  auto killed = mc;
  // The kill point is only deterministic with per-sample sequencing: the
  // batched engine draws a whole block (hooks included) before simulating,
  // so a hook-injected cancel would fire before samples 0-3 complete.
  // Pinning the killed run to the scalar oracle keeps the cut exact; the
  // resume below stays on the default batched path, which doubles as a
  // scalar-written-checkpoint -> batched-resume interop check.
  killed.lanes = 1;
  killed.per_sample_hook = [&](std::size_t k,
                               softfet::cells::InverterTestbenchSpec&) {
    if (k == 4) token.request();
  };
  try {
    (void)sc::ptm_monte_carlo(soft_base(), killed, options);
    FAIL() << "expected BudgetExceededError";
  } catch (const softfet::BudgetExceededError& e) {
    EXPECT_EQ(e.stop(), su::BudgetStop::kCancel);
  }

  // Resume: only the unfinished samples run again. The cancel-poisoned
  // sample 4 must NOT have been checkpointed as a failure.
  auto resumed_spec = mc;
  std::vector<std::size_t> simulated;
  resumed_spec.per_sample_hook =
      [&](std::size_t k, softfet::cells::InverterTestbenchSpec&) {
        simulated.push_back(k);
      };
  const auto resumed = sc::ptm_monte_carlo(soft_base(), resumed_spec);
  EXPECT_EQ(simulated, (std::vector<std::size_t>{4, 5, 6, 7}));

  // Reference: the same study, never interrupted, no checkpoint.
  auto reference_spec = mc;
  reference_spec.checkpoint = sc::CheckpointSpec{};
  const auto reference = sc::ptm_monte_carlo(soft_base(), reference_spec);

  EXPECT_EQ(resumed.samples, reference.samples);
  EXPECT_EQ(resumed.failed_samples, reference.failed_samples);
  EXPECT_EQ(resumed.imax_mean, reference.imax_mean);
  EXPECT_EQ(resumed.imax_std, reference.imax_std);
  EXPECT_EQ(resumed.imax_worst, reference.imax_worst);
  EXPECT_EQ(resumed.delay_mean, reference.delay_mean);
  EXPECT_EQ(resumed.delay_std, reference.delay_std);
  EXPECT_EQ(resumed.delay_worst, reference.delay_worst);
  EXPECT_EQ(resumed.fraction_below_baseline,
            reference.fraction_below_baseline);
}

TEST(MonteCarloCheckpoint, RefusesDifferentStudy) {
  TempFile file("mc_tag.ckpt");
  sc::MonteCarloSpec mc;
  mc.samples = 2;
  mc.seed = 1;
  mc.threads = 1;
  mc.checkpoint.path = file.path;
  (void)sc::ptm_monte_carlo(soft_base(), mc);

  mc.seed = 2;  // different study, same file
  EXPECT_THROW((void)sc::ptm_monte_carlo(soft_base(), mc), softfet::Error);
}

TEST(SweepCheckpoint, FinishedSweepReloadsWithoutSimulating) {
  TempFile file("sweep.ckpt");
  const auto spec = soft_base();
  const std::vector<double> v_imts{0.35, 0.45};
  const std::vector<double> v_mits{0.2, 0.3};
  sc::CheckpointSpec checkpoint;
  checkpoint.path = file.path;
  checkpoint.flush_every = 1;

  const auto first =
      sc::sweep_vimt_vmit(spec, v_imts, v_mits, {}, checkpoint);
  ASSERT_EQ(first.size(), 4u);
  for (const auto& p : first) {
    ASSERT_FALSE(p.failure.has_value()) << p.v_imt << "/" << p.v_mit;
    EXPECT_FALSE(p.metrics.tran.time.empty());
  }

  // Second run against the same file: every point decodes from the
  // checkpoint (empty waveforms prove it), scalar metrics bitwise equal.
  const auto second =
      sc::sweep_vimt_vmit(spec, v_imts, v_mits, {}, checkpoint);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].v_imt, first[i].v_imt);
    EXPECT_EQ(second[i].v_mit, first[i].v_mit);
    EXPECT_FALSE(second[i].failure.has_value());
    EXPECT_TRUE(second[i].metrics.tran.time.empty());
    EXPECT_EQ(second[i].metrics.i_max, first[i].metrics.i_max);
    EXPECT_EQ(second[i].metrics.max_didt, first[i].metrics.max_didt);
    EXPECT_EQ(second[i].metrics.delay, first[i].metrics.delay);
    EXPECT_EQ(second[i].metrics.imt_count, first[i].metrics.imt_count);
  }
}
