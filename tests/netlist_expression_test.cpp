#include <gtest/gtest.h>

#include "netlist/expression.hpp"
#include "util/error.hpp"

using softfet::netlist::ParamScope;
using softfet::netlist::evaluate_expression;

namespace {
ParamScope scope_with(std::initializer_list<std::pair<const char*, double>> kv) {
  ParamScope s;
  for (const auto& [k, v] : kv) s.set(k, v);
  return s;
}
}  // namespace

TEST(Expression, Arithmetic) {
  const ParamScope s;
  EXPECT_DOUBLE_EQ(evaluate_expression("1+2*3", s), 7.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("(1+2)*3", s), 9.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("10/4", s), 2.5);
  EXPECT_DOUBLE_EQ(evaluate_expression("2^10", s), 1024.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("2^2^3", s), 256.0);  // right assoc
  EXPECT_DOUBLE_EQ(evaluate_expression("-3 + 5", s), 2.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("--4", s), 4.0);
}

TEST(Expression, EngineeringSuffixes) {
  const ParamScope s;
  EXPECT_DOUBLE_EQ(evaluate_expression("500k + 1meg", s), 1.5e6);
  EXPECT_DOUBLE_EQ(evaluate_expression("10p * 2", s), 20e-12);
  EXPECT_DOUBLE_EQ(evaluate_expression("1e-9 + 1n", s), 2e-9);
}

TEST(Expression, Parameters) {
  const auto s = scope_with({{"vcc", 1.0}, {"ratio", 0.4}});
  EXPECT_DOUBLE_EQ(evaluate_expression("vcc/2", s), 0.5);
  EXPECT_DOUBLE_EQ(evaluate_expression("vcc*ratio", s), 0.4);
  EXPECT_TRUE(s.has("VCC"));  // case-insensitive
  EXPECT_DOUBLE_EQ(s.get("VCC"), 1.0);
}

TEST(Expression, ScopeChain) {
  const auto parent = scope_with({{"a", 1.0}, {"b", 2.0}});
  ParamScope child(&parent);
  child.set("b", 20.0);  // shadow
  EXPECT_DOUBLE_EQ(evaluate_expression("a + b", child), 21.0);
  EXPECT_FALSE(child.has("c"));
}

TEST(Expression, Functions) {
  const ParamScope s;
  EXPECT_DOUBLE_EQ(evaluate_expression("abs(-3)", s), 3.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("sqrt(16)", s), 4.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("min(2, 3)", s), 2.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("max(2, 3)", s), 3.0);
  EXPECT_DOUBLE_EQ(evaluate_expression("pow(2, 8)", s), 256.0);
  EXPECT_NEAR(evaluate_expression("exp(ln(5))", s), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(evaluate_expression("log10(1000)", s), 3.0);
}

TEST(Expression, Errors) {
  const ParamScope s;
  EXPECT_THROW((void)evaluate_expression("1 +", s), softfet::Error);
  EXPECT_THROW((void)evaluate_expression("(1", s), softfet::Error);
  EXPECT_THROW((void)evaluate_expression("foo", s), softfet::Error);
  EXPECT_THROW((void)evaluate_expression("min(1)", s), softfet::Error);
  EXPECT_THROW((void)evaluate_expression("1 2", s), softfet::Error);
  EXPECT_THROW((void)evaluate_expression("nope(1)", s), softfet::Error);
}
