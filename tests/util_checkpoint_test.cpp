// Checkpoint store unit tests: escaping, atomic save/load round trips, and
// the tag/total mismatch refusals that keep two studies from mixing.
#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace su = softfet::util;

namespace {

/// Unique path under the gtest temp dir, removed on destruction.
struct TempFile {
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

}  // namespace

TEST(CheckpointEscape, RoundTripsAwkwardStrings) {
  const std::string cases[] = {
      "",
      "plain",
      "two words",
      "tab\tnewline\ncarriage\rreturn",
      "percent % and %20 lookalikes",
      std::string("embedded\0nul", 12),
  };
  for (const auto& text : cases) {
    const std::string escaped = su::escape_field(text);
    EXPECT_EQ(escaped.find(' '), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << escaped;
    EXPECT_EQ(su::unescape_field(escaped), text);
  }
}

TEST(Checkpoint, FreshWhenFileMissing) {
  TempFile file("ckpt_fresh");
  const auto ckpt = su::Checkpoint::load_or_create(file.path, "tag a", 4);
  EXPECT_EQ(ckpt.total(), 4u);
  EXPECT_EQ(ckpt.completed(), 0u);
  EXPECT_FALSE(ckpt.has(0));
  EXPECT_FALSE(ckpt.payload(3).has_value());
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  TempFile file("ckpt_roundtrip");
  {
    auto ckpt = su::Checkpoint::load_or_create(file.path, "grid 3x2", 6);
    ckpt.record(0, "ok 0x1p+0");
    ckpt.record(5, "fail 0 2 ctx%20a msg");
    ckpt.save(file.path);
  }
  const auto loaded = su::Checkpoint::load_or_create(file.path, "grid 3x2", 6);
  EXPECT_EQ(loaded.completed(), 2u);
  ASSERT_TRUE(loaded.has(0));
  ASSERT_TRUE(loaded.has(5));
  EXPECT_FALSE(loaded.has(1));
  EXPECT_EQ(*loaded.payload(0), "ok 0x1p+0");
  EXPECT_EQ(*loaded.payload(5), "fail 0 2 ctx%20a msg");
}

TEST(Checkpoint, LastRecordWins) {
  su::Checkpoint ckpt("tag", 2);
  ckpt.record(1, "first");
  ckpt.record(1, "second");
  EXPECT_EQ(ckpt.completed(), 1u);
  EXPECT_EQ(*ckpt.payload(1), "second");
}

TEST(Checkpoint, RefusesTagMismatch) {
  TempFile file("ckpt_tag");
  {
    auto ckpt = su::Checkpoint::load_or_create(file.path, "seed=1", 3);
    ckpt.record(0, "x");
    ckpt.save(file.path);
  }
  // Same grid size, different study parameters: silently mixing the two
  // would corrupt statistics, so loading must throw.
  EXPECT_THROW(
      (void)su::Checkpoint::load_or_create(file.path, "seed=2", 3),
      softfet::Error);
}

TEST(Checkpoint, RefusesTotalMismatch) {
  TempFile file("ckpt_total");
  {
    auto ckpt = su::Checkpoint::load_or_create(file.path, "seed=1", 3);
    ckpt.save(file.path);
  }
  EXPECT_THROW(
      (void)su::Checkpoint::load_or_create(file.path, "seed=1", 4),
      softfet::Error);
}

TEST(Checkpoint, RefusesForeignFile) {
  TempFile file("ckpt_magic");
  {
    std::ofstream out(file.path);
    out << "not a checkpoint\n";
  }
  EXPECT_THROW(
      (void)su::Checkpoint::load_or_create(file.path, "tag", 1),
      softfet::Error);
}

TEST(Checkpoint, RefusesOutOfRangeSlot) {
  TempFile file("ckpt_slot");
  {
    std::ofstream out(file.path);
    out << "softfet-checkpoint v1\n";
    out << "tag t\n";
    out << "total 2\n";
    out << "slot 7 payload\n";
  }
  EXPECT_THROW(
      (void)su::Checkpoint::load_or_create(file.path, "t", 2),
      softfet::Error);
}

TEST(Checkpoint, SaveLeavesNoTmpBehind) {
  TempFile file("ckpt_tmp");
  su::Checkpoint ckpt("t", 1);
  ckpt.record(0, "p");
  ckpt.save(file.path);
  std::ifstream tmp(file.path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream real(file.path);
  EXPECT_TRUE(real.good());
}

TEST(Checkpoint, ConcurrentWritersToDistinctFiles) {
  // N threads save their own files into one shared directory. Saves fsync
  // through per-save unique tmp names, so after the storm every file loads
  // back complete and no tmp litter remains in the directory.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "ckpt_multi_writer";
  fs::remove_all(dir);
  fs::create_directories(dir);

  constexpr int kThreads = 6;
  constexpr std::size_t kSlots = 16;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&dir, t] {
      const std::string path = (dir / ("w" + std::to_string(t))).string();
      auto ckpt = su::Checkpoint::load_or_create(path, "writer", kSlots);
      for (std::size_t slot = 0; slot < kSlots; ++slot) {
        ckpt.record(slot, "t" + std::to_string(t) + " s" +
                              std::to_string(slot));
        ckpt.save(path);  // save every record: maximum rename contention
      }
    });
  }
  for (auto& w : writers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    const std::string path = (dir / ("w" + std::to_string(t))).string();
    const auto loaded = su::Checkpoint::load_or_create(path, "writer", kSlots);
    EXPECT_EQ(loaded.completed(), kSlots) << path;
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      ASSERT_TRUE(loaded.has(slot)) << path << " slot " << slot;
      EXPECT_EQ(*loaded.payload(slot),
                "t" + std::to_string(t) + " s" + std::to_string(slot));
    }
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "stray tmp file " << entry.path();
  }
  fs::remove_all(dir);
}

TEST(Checkpoint, ConcurrentWritersToTheSamePath) {
  // Two writers hammer the SAME target path. Unique per-save tmp names mean
  // each rename publishes one writer's complete file — the survivor is
  // either writer's state, never a torn mix, and no tmp files leak.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "ckpt_same_path";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "shared").string();

  constexpr std::size_t kSlots = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&path, t] {
      su::Checkpoint ckpt("shared", kSlots);
      for (std::size_t slot = 0; slot < kSlots; ++slot) {
        ckpt.record(slot, "writer" + std::to_string(t));
      }
      for (int round = 0; round < kRounds; ++round) ckpt.save(path);
    });
  }
  for (auto& w : writers) w.join();

  const auto loaded = su::Checkpoint::load_or_create(path, "shared", kSlots);
  EXPECT_EQ(loaded.completed(), kSlots);
  const std::string winner = *loaded.payload(0);
  EXPECT_TRUE(winner == "writer0" || winner == "writer1") << winner;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    ASSERT_TRUE(loaded.has(slot)) << slot;
    // Atomic publication: every slot carries the same writer's payload.
    EXPECT_EQ(*loaded.payload(slot), winner) << slot;
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "stray tmp file " << entry.path();
  }
  fs::remove_all(dir);
}
