// Property-based MOSFET model checks over a parameter grid: every model
// card must satisfy the same structural invariants (antisymmetry, analytic
// derivatives, monotonicity, Ion/Ioff ordering).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "devices/mosfet.hpp"
#include "devices/tech40.hpp"

namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;

namespace {

// (vt0, kp, theta, lambda)
using ModelCardParam = std::tuple<double, double, double, double>;

class MosfetProperty : public ::testing::TestWithParam<ModelCardParam> {
 protected:
  [[nodiscard]] sd::MosfetModel model() const {
    auto m = t40::nmos();
    m.vt0 = std::get<0>(GetParam());
    m.kp = std::get<1>(GetParam());
    m.theta = std::get<2>(GetParam());
    m.lambda = std::get<3>(GetParam());
    return m;
  }
  sd::MosfetDims dims_ = t40::min_nmos_dims();
};

}  // namespace

TEST_P(MosfetProperty, AntisymmetricUnderSourceDrainExchange) {
  const auto m = model();
  for (const double vgs : {0.1, 0.4, 0.8, 1.2}) {
    for (const double vds : {0.05, 0.3, 0.9}) {
      const auto fwd = sd::mosfet_evaluate(m, dims_, vgs, vds);
      const auto rev = sd::mosfet_evaluate(m, dims_, vgs - vds, -vds);
      EXPECT_NEAR(rev.id, -fwd.id, 1e-12 + 1e-9 * std::fabs(fwd.id))
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(MosfetProperty, DerivativesMatchFiniteDifferences) {
  const auto m = model();
  const double h = 1e-7;
  for (const double vgs : {0.2, 0.6, 1.0}) {
    for (const double vds : {-0.4, 0.1, 0.8}) {
      const auto op = sd::mosfet_evaluate(m, dims_, vgs, vds);
      const auto dg = sd::mosfet_evaluate(m, dims_, vgs + h, vds);
      const auto dd = sd::mosfet_evaluate(m, dims_, vgs, vds + h);
      const double gm_fd = (dg.id - op.id) / h;
      const double gds_fd = (dd.id - op.id) / h;
      EXPECT_NEAR(op.gm, gm_fd, 2e-3 * std::max(std::fabs(gm_fd), 1e-9));
      EXPECT_NEAR(op.gds, gds_fd, 2e-3 * std::max(std::fabs(gds_fd), 1e-9));
    }
  }
}

TEST_P(MosfetProperty, CurrentMonotoneInVgs) {
  const auto m = model();
  double previous = -1.0;
  for (double vgs = 0.0; vgs <= 1.2001; vgs += 0.05) {
    const auto op = sd::mosfet_evaluate(m, dims_, vgs, 1.0);
    EXPECT_GT(op.id, previous) << "vgs=" << vgs;
    previous = op.id;
  }
}

TEST_P(MosfetProperty, CurrentMonotoneInVdsForward) {
  const auto m = model();
  double previous = -1e-18;
  for (double vds = 0.0; vds <= 1.2001; vds += 0.05) {
    const auto op = sd::mosfet_evaluate(m, dims_, 0.9, vds);
    EXPECT_GE(op.id, previous) << "vds=" << vds;
    previous = op.id;
  }
}

TEST_P(MosfetProperty, OnOffOrdering) {
  const auto m = model();
  const auto off = sd::mosfet_evaluate(m, dims_, 0.0, 1.0);
  const auto on = sd::mosfet_evaluate(m, dims_, 1.0, 1.0);
  EXPECT_GT(off.id, 0.0);
  EXPECT_GT(on.id, 100.0 * off.id);
}

TEST_P(MosfetProperty, ConductancesNonNegativeInForwardOperation) {
  const auto m = model();
  for (const double vgs : {0.2, 0.6, 1.0}) {
    for (const double vds : {0.1, 0.5, 1.0}) {
      const auto op = sd::mosfet_evaluate(m, dims_, vgs, vds);
      EXPECT_GE(op.gm, 0.0);
      EXPECT_GE(op.gds, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelCards, MosfetProperty,
    ::testing::Values(
        ModelCardParam{0.25, 500e-6, 1.5, 0.15},   // LVT
        ModelCardParam{0.35, 500e-6, 1.5, 0.15},   // SVT (default card)
        ModelCardParam{0.55, 500e-6, 1.5, 0.15},   // HVT
        ModelCardParam{0.35, 250e-6, 1.5, 0.15},   // PMOS-strength kp
        ModelCardParam{0.35, 500e-6, 0.0, 0.15},   // no mobility reduction
        ModelCardParam{0.35, 500e-6, 3.0, 0.15},   // heavy mobility reduction
        ModelCardParam{0.35, 500e-6, 1.5, 0.0},    // no CLM
        ModelCardParam{0.45, 800e-6, 2.0, 0.3}),   // off-grid combo
    [](const ::testing::TestParamInfo<ModelCardParam>& param_info) {
      // Structured bindings are unusable inside macro arguments (their
      // commas split the argument list), so use std::get.
      return "vt" +
             std::to_string(static_cast<int>(std::get<0>(param_info.param) * 100)) +
             "_kp" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param) * 1e6)) +
             "_th" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 10)) +
             "_la" +
             std::to_string(static_cast<int>(std::get<3>(param_info.param) * 100));
    });
