// PDN model and power-gate wake-up testbench.
#include <gtest/gtest.h>

#include "cells/pdn.hpp"
#include "cells/power_gate.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace sm = softfet::measure;
using softfet::measure::Waveform;

TEST(Pdn, DcRailAtVcc) {
  ss::Circuit c;
  const auto pdn = sc::add_pdn(c, "pdn", "rail", sc::PdnParams{});
  const auto op = ss::dc_operating_point(c);
  // No load: inductor shorts, no IR drop.
  EXPECT_NEAR(op.voltage("rail"), 1.0, 1e-6);
}

TEST(Pdn, IrDropUnderDcLoad) {
  ss::Circuit c;
  sc::PdnParams params;
  const auto pdn = sc::add_pdn(c, "pdn", "rail", params);
  c.add<sd::Resistor>("Rload", pdn.rail, ss::kGroundNode, 100.0);  // 10 mA
  const auto op = ss::dc_operating_point(c);
  const double expected_drop = params.r_pkg * (1.0 / (100.0 + params.r_pkg));
  EXPECT_NEAR(1.0 - op.voltage("rail"), expected_drop, 1e-5);
}

TEST(Pdn, CurrentStepCausesDroopAndRingback) {
  ss::Circuit c;
  const auto pdn = sc::add_pdn(c, "pdn", "rail", sc::PdnParams{});
  // 20 mA load step with a 100 ps edge.
  c.add<sd::ISource>("Iload", pdn.rail, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 20e-3, 2e-9, 100e-12, 100e-12,
                                           1.0));
  const auto result = ss::run_transient(c, 40e-9);
  const Waveform rail = Waveform::from_tran(result, pdn.rail_signal);
  const double droop = sm::worst_droop(rail, 1.0);
  // More than the static IR drop (L di/dt + resonance), less than the rail.
  EXPECT_GT(droop, 20e-3 * sc::PdnParams{}.r_pkg * 1.5);
  EXPECT_LT(droop, 0.5);
  // Settles back near the IR-drop level.
  EXPECT_NEAR(rail.value(40e-9), 1.0 - 20e-3 * sc::PdnParams{}.r_pkg, 5e-3);
}

TEST(PowerGate, DomainStartsAsleepAndWakes) {
  sc::PowerGateSpec spec;
  auto tb = sc::make_power_gate_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform vvdd = Waveform::from_tran(result, tb.virtual_rail_signal);
  // Asleep: virtual rail near ground (leak-defined).
  EXPECT_LT(vvdd.value(1e-9), 0.1);
  // Awake: virtual rail near VCC.
  EXPECT_GT(vvdd.value(result.time.back()), 0.9);
}

TEST(PowerGate, WakeDroopsTheSharedRail) {
  sc::PowerGateSpec spec;
  auto tb = sc::make_power_gate_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform rail = Waveform::from_tran(result, tb.rail_signal);
  const double settled = rail.value(0.9 * spec.enable_delay);
  const double droop =
      sm::worst_droop(rail.window(spec.enable_delay, result.time.back()),
                      settled);
  EXPECT_GT(droop, 10e-3);   // the wake event visibly droops the rail
  EXPECT_LT(droop, 200e-3);  // but the PDN holds it up
}

TEST(PowerGate, SoftGateStaircasesTheHeaderGate) {
  sc::PowerGateSpec spec;
  spec.ptm = sc::PowerGateSpec::default_header_ptm();
  auto tb = sc::make_power_gate_testbench(spec);
  ASSERT_NE(tb.ptm, nullptr);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  EXPECT_GE(tb.ptm->imt_count(), 1);
  // Gate eventually reaches ~0 (fully on).
  const Waveform gate = Waveform::from_tran(result, tb.gate_signal);
  EXPECT_LT(gate.value(result.time.back()), 0.1);
}

TEST(PowerGate, HeaderPtmCardIsConsistent) {
  const auto ptm = sc::PowerGateSpec::default_header_ptm();
  EXPECT_NO_THROW(ptm.validate());
  EXPECT_LT(ptm.r_ins, sd::PtmParams{}.r_ins);  // scaled for the wide header
}
