// PDN model and power-gate wake-up testbench.
#include <gtest/gtest.h>

#include "cells/pdn.hpp"
#include "cells/power_gate.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace sm = softfet::measure;
using softfet::measure::Waveform;

TEST(Pdn, DcRailAtVcc) {
  ss::Circuit c;
  const auto pdn = sc::add_pdn(c, "pdn", "rail", sc::PdnParams{});
  const auto op = ss::dc_operating_point(c);
  // No load: inductor shorts, no IR drop.
  EXPECT_NEAR(op.voltage("rail"), 1.0, 1e-6);
}

TEST(Pdn, IrDropUnderDcLoad) {
  ss::Circuit c;
  sc::PdnParams params;
  const auto pdn = sc::add_pdn(c, "pdn", "rail", params);
  c.add<sd::Resistor>("Rload", pdn.rail, ss::kGroundNode, 100.0);  // 10 mA
  const auto op = ss::dc_operating_point(c);
  const double expected_drop = params.r_pkg * (1.0 / (100.0 + params.r_pkg));
  EXPECT_NEAR(1.0 - op.voltage("rail"), expected_drop, 1e-5);
}

TEST(Pdn, CurrentStepCausesDroopAndRingback) {
  ss::Circuit c;
  const auto pdn = sc::add_pdn(c, "pdn", "rail", sc::PdnParams{});
  // 20 mA load step with a 100 ps edge.
  c.add<sd::ISource>("Iload", pdn.rail, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 20e-3, 2e-9, 100e-12, 100e-12,
                                           1.0));
  const auto result = ss::run_transient(c, 40e-9);
  const Waveform rail = Waveform::from_tran(result, pdn.rail_signal);
  const double droop = sm::worst_droop(rail, 1.0);
  // More than the static IR drop (L di/dt + resonance), less than the rail.
  EXPECT_GT(droop, 20e-3 * sc::PdnParams{}.r_pkg * 1.5);
  EXPECT_LT(droop, 0.5);
  // Settles back near the IR-drop level.
  EXPECT_NEAR(rail.value(40e-9), 1.0 - 20e-3 * sc::PdnParams{}.r_pkg, 5e-3);
}

TEST(PdnGrid, OneByOneMatchesLumpedPdn) {
  // A 1x1x1 grid is electrically the lumped PDN: one bump carries the full
  // package R/L, one tile the full decap. Node numbering differs, so the
  // match is numerical, not bitwise.
  const auto params = sc::PdnParams::zhang_islped13();

  ss::Circuit lumped;
  const auto pdn = sc::add_pdn(lumped, "pdn", "rail", params);
  lumped.add<sd::ISource>("Iload", pdn.rail, ss::kGroundNode,
                          sd::SourceSpec::pulse(0.0, 20e-3, 2e-9, 100e-12,
                                                100e-12, 1.0));
  const auto ref = ss::run_transient(lumped, 30e-9);

  ss::Circuit gridded;
  const auto grid = sc::make_pdn_grid(
      gridded, "pdn", sc::PdnGridParams::from_lumped(params, 1, 1));
  EXPECT_EQ(grid.tile_count(), 1u);
  EXPECT_EQ(grid.bump_count, 1u);
  gridded.add<sd::ISource>("Iload", grid.tile(0, 0), ss::kGroundNode,
                           sd::SourceSpec::pulse(0.0, 20e-3, 2e-9, 100e-12,
                                                 100e-12, 1.0));
  const auto result = ss::run_transient(gridded, 30e-9);

  const Waveform rail_ref = Waveform::from_tran(ref, pdn.rail_signal);
  const Waveform rail_grid =
      Waveform::from_tran(result, grid.tile_signal(0, 0));
  for (int i = 1; i <= 30; ++i) {
    const double t = 1e-9 * i;
    EXPECT_NEAR(rail_grid.value(t), rail_ref.value(t), 1e-4)
        << "t=" << t;
  }
  EXPECT_NEAR(sm::worst_droop(rail_grid, params.vcc),
              sm::worst_droop(rail_ref, params.vcc), 1e-4);
}

TEST(PdnGrid, DcIrDropMatchesLumpedTotals) {
  // Under a DC load the mesh presents r_pkg (all bumps in parallel) plus a
  // small spreading term; the rail must sit just below vcc - I*r_pkg.
  const auto params = sc::PdnParams::zhang_islped13();
  ss::Circuit c;
  const auto grid = sc::make_pdn_grid(
      c, "pdn", sc::PdnGridParams::from_lumped(params, 8, 8));
  c.add<sd::Resistor>("Rload", grid.tile(4, 4), ss::kGroundNode, 100.0);
  const auto op = ss::dc_operating_point(c);
  const double v = op.x[grid.tile(4, 4) - 1];
  const double ir_pkg = params.r_pkg * (params.vcc / 100.0);
  EXPECT_LT(v, params.vcc - 0.5 * ir_pkg);
  EXPECT_GT(v, params.vcc - 20.0 * ir_pkg);
}

TEST(PdnGrid, DroopLocalizesAtTheAggressorTile) {
  ss::Circuit c;
  const auto grid = sc::make_pdn_grid(
      c, "pdn",
      sc::PdnGridParams::from_lumped(sc::PdnParams::zhang_islped13(), 8, 8));
  c.add<sd::ISource>("Iload", grid.tile(2, 2), ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 20e-3, 1e-9, 100e-12, 100e-12,
                                           1.0));
  const auto result = ss::run_transient(c, 5e-9);
  const double at_aggressor = sm::worst_droop(
      Waveform::from_tran(result, grid.tile_signal(2, 2)), 1.0);
  const double far_corner = sm::worst_droop(
      Waveform::from_tran(result, grid.tile_signal(7, 7)), 1.0);
  EXPECT_GT(at_aggressor, far_corner);
  EXPECT_GT(at_aggressor, 10e-3);  // the step visibly droops the tile
}

TEST(PdnGrid, MultiLayerMeshSolves) {
  ss::Circuit c;
  auto params = sc::PdnGridParams::from_lumped(
      sc::PdnParams::zhang_islped13(), 4, 4, 2);
  params.l_seg = 1e-12;  // exercise the series R-L segment variant
  const auto grid = sc::make_pdn_grid(c, "pdn", params);
  EXPECT_EQ(grid.nodes.size(), 4u * 4u * 2u);
  c.add<sd::ISource>("Iload", grid.tile(1, 2), ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 10e-3, 1e-9, 100e-12, 100e-12,
                                           1.0));
  const auto result = ss::run_transient(c, 4e-9);
  const Waveform rail = Waveform::from_tran(result, grid.tile_signal(1, 2));
  EXPECT_GT(rail.value(0.5e-9), 0.9);  // pre-step rail near vcc
  EXPECT_GT(sm::worst_droop(rail, 1.0), 1e-3);
}

TEST(PdnGrid, RejectsDegenerateGeometry) {
  ss::Circuit c;
  sc::PdnGridParams params;
  params.rows = 0;
  EXPECT_THROW(sc::make_pdn_grid(c, "pdn", params),
               softfet::InvalidCircuitError);
}

TEST(PowerGate, DomainStartsAsleepAndWakes) {
  sc::PowerGateSpec spec;
  auto tb = sc::make_power_gate_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform vvdd = Waveform::from_tran(result, tb.virtual_rail_signal);
  // Asleep: virtual rail near ground (leak-defined).
  EXPECT_LT(vvdd.value(1e-9), 0.1);
  // Awake: virtual rail near VCC.
  EXPECT_GT(vvdd.value(result.time.back()), 0.9);
}

TEST(PowerGate, WakeDroopsTheSharedRail) {
  sc::PowerGateSpec spec;
  auto tb = sc::make_power_gate_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform rail = Waveform::from_tran(result, tb.rail_signal);
  const double settled = rail.value(0.9 * spec.enable_delay);
  const double droop =
      sm::worst_droop(rail.window(spec.enable_delay, result.time.back()),
                      settled);
  EXPECT_GT(droop, 10e-3);   // the wake event visibly droops the rail
  EXPECT_LT(droop, 200e-3);  // but the PDN holds it up
}

TEST(PowerGate, SoftGateStaircasesTheHeaderGate) {
  sc::PowerGateSpec spec;
  spec.ptm = sc::PowerGateSpec::default_header_ptm();
  auto tb = sc::make_power_gate_testbench(spec);
  ASSERT_NE(tb.ptm, nullptr);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  EXPECT_GE(tb.ptm->imt_count(), 1);
  // Gate eventually reaches ~0 (fully on).
  const Waveform gate = Waveform::from_tran(result, tb.gate_signal);
  EXPECT_LT(gate.value(result.time.back()), 0.1);
}

TEST(PowerGate, HeaderPtmCardIsConsistent) {
  const auto ptm = sc::PowerGateSpec::default_header_ptm();
  EXPECT_NO_THROW(ptm.validate());
  EXPECT_LT(ptm.r_ins, sd::PtmParams{}.r_ins);  // scaled for the wide header
}
