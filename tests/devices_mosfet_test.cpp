// EKV MOSFET model: characteristics, derivative consistency, polarity
// mirroring, and inverter behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/capacitor.hpp"
#include "devices/mosfet.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;
using softfet::measure::Waveform;

TEST(MosfetModel, OnCurrentInRealisticRange) {
  const auto op = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 1.0, 1.0);
  // ~1 mA/um class: 120nm device => on the order of 100 uA.
  EXPECT_GT(op.id, 50e-6);
  EXPECT_LT(op.id, 400e-6);
}

TEST(MosfetModel, OffCurrentSmall) {
  const auto op = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.0, 1.0);
  EXPECT_GT(op.id, 0.0);
  EXPECT_LT(op.id, 10e-9);
  const auto on = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 1.0, 1.0);
  EXPECT_GT(on.id / op.id, 1e4);  // healthy Ion/Ioff
}

TEST(MosfetModel, SubthresholdSlopeNearTheory) {
  // S = n * Vt * ln(10) ~ 80 mV/dec for n = 1.35.
  const auto lo = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.10, 1.0);
  const auto hi = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.20, 1.0);
  const double decades = std::log10(hi.id / lo.id);
  const double swing_mv = 100.0 / decades;
  EXPECT_NEAR(swing_mv, 1.35 * 0.02585 * std::log(10.0) * 1e3, 6.0);
}

TEST(MosfetModel, ZeroVdsZeroCurrent) {
  const auto op = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.8, 0.0);
  EXPECT_NEAR(op.id, 0.0, 1e-15);
}

TEST(MosfetModel, AntisymmetricInVds) {
  const auto fwd = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.8, 0.3);
  // Swapping source and drain: vgs' = vgs - vds, vds' = -vds.
  const auto rev = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.5, -0.3);
  EXPECT_NEAR(rev.id, -fwd.id, 1e-12);
}

TEST(MosfetModel, DerivativesMatchFiniteDifference) {
  const auto dims = t40::min_nmos_dims();
  const auto model = t40::nmos();
  const double h = 1e-6;
  for (const double vgs : {0.2, 0.4, 0.7, 1.0}) {
    for (const double vds : {-0.5, 0.05, 0.5, 1.0}) {
      const auto op = sd::mosfet_evaluate(model, dims, vgs, vds);
      const auto gp = sd::mosfet_evaluate(model, dims, vgs + h, vds);
      const auto gm_fd = (gp.id - op.id) / h;
      const auto dp = sd::mosfet_evaluate(model, dims, vgs, vds + h);
      const auto gds_fd = (dp.id - op.id) / h;
      const double scale = std::max(std::fabs(op.gm), 1e-9);
      EXPECT_NEAR(op.gm, gm_fd, 1e-3 * scale) << vgs << "," << vds;
      EXPECT_NEAR(op.gds, gds_fd,
                  1e-3 * std::max(std::fabs(op.gds), 1e-9))
          << vgs << "," << vds;
    }
  }
}

TEST(MosfetModel, ContinuousAcrossVdsZero) {
  const auto dims = t40::min_nmos_dims();
  const auto model = t40::nmos();
  const auto just_pos = sd::mosfet_evaluate(model, dims, 0.8, 1e-9);
  const auto just_neg = sd::mosfet_evaluate(model, dims, 0.8, -1e-9);
  EXPECT_NEAR(just_pos.id, -just_neg.id, 1e-12);
  EXPECT_NEAR(just_pos.gds, just_neg.gds, 1e-6 * just_pos.gds);
}

TEST(MosfetModel, HigherVtLowersCurrent) {
  const auto svt = sd::mosfet_evaluate(t40::nmos(t40::kVtSvt),
                                       t40::min_nmos_dims(), 1.0, 1.0);
  const auto hvt = sd::mosfet_evaluate(t40::nmos(t40::kVtHvt),
                                       t40::min_nmos_dims(), 1.0, 1.0);
  EXPECT_LT(hvt.id, svt.id);
  // At low VCC the HVT penalty explodes (paper Fig. 5 mechanism).
  const auto svt_low = sd::mosfet_evaluate(t40::nmos(t40::kVtSvt),
                                           t40::min_nmos_dims(), 0.5, 0.5);
  const auto hvt_low = sd::mosfet_evaluate(t40::nmos(t40::kVtHvt),
                                           t40::min_nmos_dims(), 0.5, 0.5);
  EXPECT_GT(svt.id / hvt.id, 1.0);
  EXPECT_GT(svt_low.id / hvt_low.id, svt.id / hvt.id);
}

TEST(MosfetDevice, NmosCommonSourceOp) {
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto g = c.node("g");
  const auto d = c.node("d");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::VSource>("Vg", g, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::Resistor>("RL", vdd, d, 5e3);
  c.add<sd::Mosfet>("M1", d, g, ss::kGroundNode, ss::kGroundNode, t40::nmos(),
                    t40::min_nmos_dims());
  const auto op = ss::dc_operating_point(c);
  // Transistor on: drain pulled low.
  EXPECT_LT(op.voltage("d"), 0.5);
  EXPECT_GT(op.voltage("d"), 0.0);
}

TEST(MosfetDevice, PmosMirror) {
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto d = c.node("d");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  // PMOS source at vdd, gate grounded (on), drain through load to ground.
  c.add<sd::Mosfet>("M1", d, ss::kGroundNode, vdd, vdd, t40::pmos(),
                    t40::min_pmos_dims());
  c.add<sd::Resistor>("RL", d, ss::kGroundNode, 5e3);
  const auto op = ss::dc_operating_point(c);
  EXPECT_GT(op.voltage("d"), 0.5);  // pulled toward vdd
}

TEST(MosfetDevice, InverterVtcIsMonotoneAndFullSwing) {
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, sd::SourceSpec::dc(0.0));
  c.add<sd::Mosfet>("MP", out, in, vdd, vdd, t40::pmos(), t40::min_pmos_dims());
  c.add<sd::Mosfet>("MN", out, in, ss::kGroundNode, ss::kGroundNode,
                    t40::nmos(), t40::min_nmos_dims());
  std::vector<double> vin_values;
  for (int i = 0; i <= 40; ++i) vin_values.push_back(i * 0.025);
  const auto sweep = ss::dc_sweep(c, "Vin", vin_values);
  const auto& vout = sweep.table.signal("v(out)");
  EXPECT_NEAR(vout.front(), 1.0, 1e-3);
  EXPECT_NEAR(vout.back(), 0.0, 1e-3);
  for (std::size_t i = 1; i < vout.size(); ++i) {
    EXPECT_LE(vout[i], vout[i - 1] + 1e-6);  // monotone falling
  }
  // Switching threshold near mid-rail (balanced sizing).
  const Waveform vtc = Waveform::from_sweep(sweep, "v(out)");
  const double vm = vtc.first_crossing(0.5, softfet::measure::CrossDirection::kFalling, 0.0);
  EXPECT_NEAR(vm, 0.5, 0.1);
}

TEST(MosfetDevice, GateCapacitanceIsFemtofarads) {
  ss::Circuit c;
  auto* m = c.add<sd::Mosfet>("M1", c.node("d"), c.node("g"), ss::kGroundNode,
                              ss::kGroundNode, t40::nmos(),
                              t40::min_nmos_dims());
  EXPECT_GT(m->gate_capacitance(), 0.05e-15);
  EXPECT_LT(m->gate_capacitance(), 2e-15);
}

TEST(MosfetDevice, InverterTransientSwitches) {
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 100e-12, 30e-12));
  c.add<sd::Mosfet>("MP", out, in, vdd, vdd, t40::pmos(), t40::min_pmos_dims());
  c.add<sd::Mosfet>("MN", out, in, ss::kGroundNode, ss::kGroundNode,
                    t40::nmos(), t40::min_nmos_dims());
  c.add<sd::Capacitor>("CL", out, ss::kGroundNode, 2e-15);
  const auto result = ss::run_transient(c, 1e-9);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(vout.value(50e-12), 1.0, 0.05);   // before edge
  EXPECT_NEAR(vout.value(0.9e-9), 0.0, 0.05);   // after edge
}
