// Batched lockstep engine vs the scalar oracle: per-sample results must be
// bitwise identical for every lane width and thread count, and a faulted
// lane must evict to the scalar path without perturbing its batch mates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "cells/inverter.hpp"
#include "core/characterize.hpp"
#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "fault_injection.hpp"
#include "sim/analyses.hpp"
#include "sim/batch.hpp"

namespace sc = softfet::core;
namespace sd = softfet::devices;
namespace ss = softfet::sim;

namespace {

softfet::cells::InverterTestbenchSpec soft_base() {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};
  return spec;
}

void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
  }
}

void expect_tran_bitwise(const ss::TranResult& a, const ss::TranResult& b) {
  expect_bitwise(a.time, b.time, "time axis");
  ASSERT_EQ(a.table.names(), b.table.names());
  for (const auto& name : a.table.names()) {
    expect_bitwise(a.table.signal(name), b.table.signal(name), name.c_str());
  }
  EXPECT_EQ(a.accepted_steps, b.accepted_steps);
  EXPECT_EQ(a.rejected_steps, b.rejected_steps);
  EXPECT_EQ(a.newton_iterations, b.newton_iterations);
  EXPECT_EQ(a.event_count, b.event_count);
  EXPECT_EQ(a.recovered_steps, b.recovered_steps);
  EXPECT_FALSE(a.truncated);
  EXPECT_FALSE(b.truncated);
}

void expect_stats_bitwise(const sc::MonteCarloStats& a,
                          const sc::MonteCarloStats& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.imax_mean, b.imax_mean);
  EXPECT_EQ(a.imax_std, b.imax_std);
  EXPECT_EQ(a.imax_worst, b.imax_worst);
  EXPECT_EQ(a.delay_mean, b.delay_mean);
  EXPECT_EQ(a.delay_std, b.delay_std);
  EXPECT_EQ(a.delay_worst, b.delay_worst);
  EXPECT_EQ(a.fraction_below_baseline, b.fraction_below_baseline);
}

}  // namespace

// The acceptance statement: Monte-Carlo statistics are bitwise identical to
// the scalar oracle for every lane width and thread count. 23 samples is
// deliberately coprime to both widths so the ragged tail block (3 lanes at
// K=4, 2 lanes at K=7) is exercised, not just full blocks.
TEST(BatchEquivalence, McStatsBitwiseAcrossLanesAndThreads) {
  sc::MonteCarloSpec oracle_spec;
  oracle_spec.samples = 23;
  oracle_spec.seed = 42;
  oracle_spec.threads = 1;
  oracle_spec.lanes = 1;
  const auto oracle = sc::ptm_monte_carlo(soft_base(), oracle_spec);
  ASSERT_EQ(oracle.failed_samples, 0);

  for (const int lanes : {4, 7, 0}) {
    for (const int threads : {1, 3}) {
      auto spec = oracle_spec;
      spec.lanes = lanes;
      spec.threads = threads;
      const auto got = sc::ptm_monte_carlo(soft_base(), spec);
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " threads=" + std::to_string(threads));
      expect_stats_bitwise(got, oracle);
    }
  }
}

// Engine-level contract: every completed lane's TranResult — time axis,
// every table column, every counter — equals scalar run_transient on an
// identical circuit bit for bit.
TEST(BatchEquivalence, RunTransientBatchMatchesScalarBitwise) {
  const double v_imts[] = {0.33, 0.38, 0.44};

  auto make_bench = [&](double v_imt) {
    auto spec = soft_base();
    spec.dut.ptm->v_imt = v_imt;
    return softfet::cells::make_inverter_testbench(spec);
  };

  // Scalar oracle runs on its own circuit instances.
  std::vector<ss::TranResult> scalar;
  for (const double v_imt : v_imts) {
    auto bench = make_bench(v_imt);
    scalar.push_back(
        ss::run_transient(bench.circuit, bench.suggested_tstop));
  }

  std::vector<softfet::cells::InverterTestbench> benches;
  for (const double v_imt : v_imts) benches.push_back(make_bench(v_imt));
  std::vector<ss::BatchLaneSpec> lanes;
  for (auto& bench : benches) {
    lanes.push_back({&bench.circuit, bench.suggested_tstop});
  }
  const auto outcomes = ss::run_transient_batch(lanes, {});

  ASSERT_EQ(outcomes.size(), scalar.size());
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    SCOPED_TRACE("lane " + std::to_string(k));
    ASSERT_FALSE(outcomes[k].evicted) << outcomes[k].eviction_reason;
    expect_tran_bitwise(outcomes[k].tran, scalar[k]);
  }
}

// A lane whose Jacobian goes NaN (and stays NaN, so the scalar engine's
// recovery ladder would engage) must be evicted — and the other lanes must
// finish bitwise identical to scalar runs, proving the dead lane never
// contaminates the shared SoA factor/solve.
TEST(BatchEquivalence, NanJacobianLaneEvictsOthersUnchanged) {
  const double v_imts[] = {0.33, 0.38, 0.44, 0.48};
  constexpr std::size_t kFaultLane = 1;

  auto make_bench = [&](double v_imt) {
    auto spec = soft_base();
    spec.dut.ptm->v_imt = v_imt;
    return softfet::cells::make_inverter_testbench(spec);
  };

  std::vector<ss::TranResult> scalar;
  for (std::size_t k = 0; k < 4; ++k) {
    if (k == kFaultLane) continue;
    auto bench = make_bench(v_imts[k]);
    scalar.push_back(
        ss::run_transient(bench.circuit, bench.suggested_tstop));
  }

  std::vector<softfet::cells::InverterTestbench> benches;
  for (const double v_imt : v_imts) benches.push_back(make_bench(v_imt));
  // Unlimited fault budget: every solve in the window is sabotaged, so no
  // amount of dt shrinking cures it and the lane must leave the batch.
  benches[kFaultLane].circuit.add<softfet::testing::FaultDevice>(
      "FNAN", benches[kFaultLane].circuit.find_node("out"),
      softfet::testing::FaultMode::kNanJacobian, 50e-12, 1e-9, -1);

  std::vector<ss::BatchLaneSpec> lanes;
  for (auto& bench : benches) {
    lanes.push_back({&bench.circuit, bench.suggested_tstop});
  }
  const auto outcomes = ss::run_transient_batch(lanes, {});
  ASSERT_EQ(outcomes.size(), 4u);

  EXPECT_TRUE(outcomes[kFaultLane].evicted);
  EXPECT_FALSE(outcomes[kFaultLane].eviction_reason.empty());

  std::size_t scalar_idx = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    if (k == kFaultLane) continue;
    SCOPED_TRACE("lane " + std::to_string(k));
    ASSERT_FALSE(outcomes[k].evicted) << outcomes[k].eviction_reason;
    expect_tran_bitwise(outcomes[k].tran, scalar[scalar_idx++]);
  }
}

// Same fault through the Monte-Carlo driver: the evicted sample reruns on
// the scalar path, fails there exactly as a scalar-only study would, and
// the surviving samples' statistics stay bitwise equal to the oracle's.
TEST(BatchEquivalence, McFaultedSampleFailsIdenticallyToScalar) {
  constexpr std::size_t kFaultSample = 2;
  sc::MonteCarloSpec mc;
  mc.samples = 8;
  mc.seed = 42;
  mc.threads = 1;
  mc.per_sample_hook = [](std::size_t k,
                          softfet::cells::InverterTestbenchSpec& spec) {
    if (k != kFaultSample) return;
    spec.instrument = [](ss::Circuit& circuit) {
      circuit.add<softfet::testing::FaultDevice>(
          "FNAN", circuit.find_node("out"),
          softfet::testing::FaultMode::kNanJacobian, 50e-12, 1e-9, -1);
    };
  };

  auto scalar_spec = mc;
  scalar_spec.lanes = 1;
  const auto scalar = sc::ptm_monte_carlo(soft_base(), scalar_spec);

  auto batched_spec = mc;
  batched_spec.lanes = 8;
  const auto batched = sc::ptm_monte_carlo(soft_base(), batched_spec);

  expect_stats_bitwise(batched, scalar);
  ASSERT_EQ(batched.failed_samples, 1);
  ASSERT_EQ(batched.failures.size(), 1u);
  EXPECT_EQ(batched.failures[0].index, kFaultSample);
  EXPECT_EQ(scalar.failures[0].index, kFaultSample);
  EXPECT_EQ(batched.failures[0].message, scalar.failures[0].message);
}
