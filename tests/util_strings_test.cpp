#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace su = softfet::util;

TEST(Strings, TrimRemovesWhitespaceBothSides) {
  EXPECT_EQ(su::trim("  abc \t"), "abc");
  EXPECT_EQ(su::trim("abc"), "abc");
  EXPECT_EQ(su::trim("   "), "");
  EXPECT_EQ(su::trim(""), "");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(su::to_lower("AbC123"), "abc123");
  EXPECT_EQ(su::to_lower(""), "");
}

TEST(Strings, SplitDropsEmptyFields) {
  const auto parts = su::split("a  b\tc ", " \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitCustomDelims) {
  const auto parts = su::split("1,2;3", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "3");
}

TEST(Strings, SplitEmptyInput) {
  EXPECT_TRUE(su::split("", " ").empty());
  EXPECT_TRUE(su::split("   ", " ").empty());
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(su::iequals("VDD", "vdd"));
  EXPECT_TRUE(su::iequals("", ""));
  EXPECT_FALSE(su::iequals("vdd", "vd"));
  EXPECT_FALSE(su::iequals("vdd", "vss"));
}

TEST(Strings, IStartsWith) {
  EXPECT_TRUE(su::istarts_with("PULSE(0 1)", "pulse"));
  EXPECT_FALSE(su::istarts_with("pu", "pulse"));
}

TEST(Strings, Contains) {
  EXPECT_TRUE(su::contains("a=b", '='));
  EXPECT_FALSE(su::contains("ab", '='));
}
