// Smoothed Level-1 (Shichman-Hodges) model option.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/mosfet.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "sim/analyses.hpp"

namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace t40 = softfet::devices::tech40;

namespace {
sd::MosfetModel level1() {
  auto m = t40::nmos();
  m.level = sd::MosfetLevel::kSquareLaw;
  return m;
}
}  // namespace

TEST(MosfetLevel1, QuadraticInSaturation) {
  const auto m = level1();
  const auto dims = t40::min_nmos_dims();
  // Deep saturation (vds = 1 >> vov), lambda contributes a fixed factor.
  const auto at = [&](double vgs) {
    return sd::mosfet_evaluate(m, dims, vgs, 1.0).id;
  };
  const double i1 = at(m.vt0 + 0.2);
  const double i2 = at(m.vt0 + 0.4);
  EXPECT_NEAR(i2 / i1, 4.0, 0.15);  // I ~ vov^2
}

TEST(MosfetLevel1, LinearInDeepTriode) {
  const auto m = level1();
  const auto dims = t40::min_nmos_dims();
  const double i1 = sd::mosfet_evaluate(m, dims, 1.0, 0.02).id;
  const double i2 = sd::mosfet_evaluate(m, dims, 1.0, 0.04).id;
  EXPECT_NEAR(i2 / i1, 2.0, 0.1);  // I ~ vds for vds << vov
}

TEST(MosfetLevel1, EssentiallyNoSubthresholdCurrent) {
  const auto m = level1();
  const auto dims = t40::min_nmos_dims();
  const double off = sd::mosfet_evaluate(m, dims, 0.0, 1.0).id;
  const double ekv_off =
      sd::mosfet_evaluate(t40::nmos(), dims, 0.0, 1.0).id;
  // The smoothed cutoff leaks far less than the EKV exponential tail.
  EXPECT_LT(off, 0.01 * ekv_off);
}

TEST(MosfetLevel1, DerivativesMatchFiniteDifferences) {
  const auto m = level1();
  const auto dims = t40::min_nmos_dims();
  const double h = 1e-7;
  for (const double vgs : {0.3, 0.5, 0.9}) {
    for (const double vds : {0.05, 0.4, 1.0}) {
      const auto op = sd::mosfet_evaluate(m, dims, vgs, vds);
      const auto dg = sd::mosfet_evaluate(m, dims, vgs + h, vds);
      const auto dd = sd::mosfet_evaluate(m, dims, vgs, vds + h);
      EXPECT_NEAR(op.gm, (dg.id - op.id) / h,
                  3e-3 * std::max((dg.id - op.id) / h, 1e-9));
      EXPECT_NEAR(op.gds, (dd.id - op.id) / h,
                  3e-3 * std::max((dd.id - op.id) / h, 1e-9));
    }
  }
}

TEST(MosfetLevel1, AgreesWithEkvInStrongInversionOrder) {
  // Not identical models, but the same card should land within ~2x in
  // strong inversion (EKV carries mobility reduction; Level-1 does not).
  const auto dims = t40::min_nmos_dims();
  const double l1 = sd::mosfet_evaluate(level1(), dims, 1.0, 1.0).id;
  const double ekv = sd::mosfet_evaluate(t40::nmos(), dims, 1.0, 1.0).id;
  EXPECT_GT(l1 / ekv, 0.5);
  EXPECT_LT(l1 / ekv, 5.0);
}

TEST(MosfetLevel1, InverterConvergesInNewton) {
  // The smoothed cutoffs must keep the DC sweep convergent.
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, sd::SourceSpec::dc(0.0));
  auto pm = t40::pmos();
  pm.level = sd::MosfetLevel::kSquareLaw;
  c.add<sd::Mosfet>("MP", out, in, vdd, vdd, pm, t40::min_pmos_dims());
  c.add<sd::Mosfet>("MN", out, in, ss::kGroundNode, ss::kGroundNode,
                    level1(), t40::min_nmos_dims());
  std::vector<double> vin;
  for (int i = 0; i <= 20; ++i) vin.push_back(i * 0.05);
  const auto sweep = ss::dc_sweep(c, "Vin", vin);
  const auto& vout = sweep.table.signal("v(out)");
  EXPECT_NEAR(vout.front(), 1.0, 1e-2);
  EXPECT_NEAR(vout.back(), 0.0, 1e-2);
}
