// Transient engine validation on RLC circuits (inductor branch unknowns,
// second-order dynamics, ringing).
#include <gtest/gtest.h>

#include <cmath>

#include "devices/capacitor.hpp"
#include "devices/inductor.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;
using softfet::measure::Waveform;

namespace {

struct RlcParams {
  double r = 10.0;
  double l = 1e-6;
  double c = 1e-9;
};

/// Series RLC driven by a voltage step; returns v(cap).
ss::TranResult simulate_series_rlc(const RlcParams& p, double tstop) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
  c.add<sd::Resistor>("R1", in, mid, p.r);
  c.add<sd::Inductor>("L1", mid, out, p.l);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, p.c);
  return ss::run_transient(c, tstop);
}

}  // namespace

TEST(TransientRlc, UnderdampedStepMatchesAnalytic) {
  const RlcParams p{10.0, 1e-6, 1e-9};
  const double w0 = 1.0 / std::sqrt(p.l * p.c);       // 3.16e7 rad/s
  const double alpha = p.r / (2.0 * p.l);             // 5e6 1/s
  ASSERT_LT(alpha, w0);                               // underdamped
  const double wd = std::sqrt(w0 * w0 - alpha * alpha);

  const auto result = simulate_series_rlc(p, 2e-6);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  const double t0 = 1e-9;  // step instant
  for (const double t : {50e-9, 120e-9, 300e-9, 700e-9, 1.5e-6}) {
    const double tt = t - t0;
    const double expected =
        1.0 - std::exp(-alpha * tt) *
                  (std::cos(wd * tt) + (alpha / wd) * std::sin(wd * tt));
    EXPECT_NEAR(vout.value(t), expected, 0.02) << "t=" << t;
  }
}

TEST(TransientRlc, OverdampedNoOvershoot) {
  const RlcParams p{2000.0, 1e-6, 1e-9};  // alpha = 1e9 >> w0
  const auto result = simulate_series_rlc(p, 20e-6);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_LT(vout.max_value(), 1.001);
  EXPECT_NEAR(vout.value(20e-6 - 1e-9), 1.0, 5e-3);
}

TEST(TransientRlc, UnderdampedOvershootMatchesTheory) {
  const RlcParams p{10.0, 1e-6, 1e-9};
  const double w0 = 1.0 / std::sqrt(p.l * p.c);
  const double zeta = p.r / 2.0 * std::sqrt(p.c / p.l);
  const double overshoot =
      std::exp(-zeta * M_PI / std::sqrt(1.0 - zeta * zeta));
  (void)w0;
  const auto result = simulate_series_rlc(p, 2e-6);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(vout.max_value(), 1.0 + overshoot, 0.02);
}

TEST(TransientRlc, InductorDcShortInOp) {
  // DC op: inductor shorts mid to out; cap open.
  ss::Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, sd::SourceSpec::dc(2.0));
  c.add<sd::Resistor>("R1", in, mid, 1e3);
  c.add<sd::Inductor>("L1", mid, out, 1e-6);
  c.add<sd::Resistor>("R2", out, ss::kGroundNode, 1e3);
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("mid"), op.voltage("out"), 1e-9);
  EXPECT_NEAR(op.voltage("out"), 1.0, 1e-6);
  EXPECT_NEAR(op.unknown("i(l1)"), 1e-3, 1e-9);
}

TEST(TransientRlc, LcEnergyNearlyConserved) {
  // Undriven LC tank with initial capacitor charge: trapezoidal integration
  // should keep the oscillation amplitude within a few percent over many
  // periods.
  ss::Circuit c;
  const auto top = c.node("top");
  // Charge the cap through a source that steps 1->0 quickly? Simpler: drive
  // with a pulse that ends, then watch ringing through a tiny resistor.
  const auto drv = c.node("drv");
  c.add<sd::VSource>("Vin", drv, ss::kGroundNode,
                     sd::SourceSpec::pulse(1.0, 0.0, 1e-7, 1e-12, 1e-12, 10.0));
  c.add<sd::Resistor>("Rdrv", drv, top, 0.05);  // small loss
  c.add<sd::Inductor>("L1", top, ss::kGroundNode, 1e-6);
  c.add<sd::Capacitor>("C1", top, ss::kGroundNode, 1e-9);

  // Wait: at t<1e-7 the source holds 1V; inductor shunts DC -> i ramps.
  // Actually the DC op makes v(top)=0 (inductor short). After the source
  // drops at t=0.1us the inductor current rings with the cap.
  const auto result = ss::run_transient(c, 3e-6);
  const Waveform v = Waveform::from_tran(result, "v(top)");
  // The tank rings; amplitude decays only via the 0.05 ohm resistor. Peak
  // early vs late amplitude should be close (loss-limited, not numerics).
  const Waveform early = v.window(0.15e-6, 0.7e-6);
  const Waveform late = v.window(2.4e-6, 2.95e-6);
  const double a_early = early.peak_magnitude();
  const double a_late = late.peak_magnitude();
  EXPECT_GT(a_early, 0.1);  // it does ring
  // Analytic decay: tau = 2L/R = 40us >> 3us, so < ~7% decay expected;
  // allow 15% total including numerical damping.
  EXPECT_GT(a_late, 0.85 * a_early);
}
