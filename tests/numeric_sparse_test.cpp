#include <gtest/gtest.h>

#include <random>

#include "numeric/dense_lu.hpp"
#include "numeric/linear_solver.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"
#include "util/error.hpp"

namespace sn = softfet::numeric;

TEST(SparseMatrix, AddAccumulates) {
  sn::SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(a.get(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.get(1, 1), 0.0);
  EXPECT_EQ(a.nonzeros(), 1u);
}

TEST(SparseMatrix, SetZeroKeepsStructure) {
  sn::SparseMatrix a(2);
  a.add(0, 1, 5.0);
  a.set_zero_keep_structure();
  EXPECT_DOUBLE_EQ(a.get(0, 1), 0.0);
  EXPECT_EQ(a.nonzeros(), 1u);  // entry still present
}

TEST(SparseMatrix, ToDenseMatchesMultiply) {
  sn::SparseMatrix a(3);
  a.add(0, 0, 2.0);
  a.add(1, 2, -1.0);
  a.add(2, 1, 4.0);
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto y_sparse = a.multiply(x);
  const auto y_dense = a.to_dense().multiply(x);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y_sparse[i], y_dense[i]);
  }
}

TEST(SparseLu, MatchesDenseOnRandomSystems) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, 29);
  const std::size_t n = 30;
  for (int trial = 0; trial < 10; ++trial) {
    sn::SparseMatrix a(n);
    // Sparse random pattern + dominant diagonal.
    for (std::size_t k = 0; k < 4 * n; ++k) {
      a.add(pick(rng), pick(rng), dist(rng));
    }
    for (std::size_t i = 0; i < n; ++i) a.add(i, i, 5.0);
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = dist(rng);
    const auto b = a.multiply(x_true);

    const auto x_sparse = sn::SparseLu(a).solve(b);
    const auto x_dense = sn::DenseLu(a.to_dense()).solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x_sparse[i], x_true[i], 1e-9);
      EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-9);
    }
  }
}

TEST(SparseLu, PivotingHandlesZeroDiagonal) {
  sn::SparseMatrix a(2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  const auto x = sn::SparseLu(a).solve({3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLu, SingularThrows) {
  sn::SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(1, 0, 1.0);  // column 1 empty -> singular
  EXPECT_THROW(sn::SparseLu{a}, softfet::ConvergenceError);
}

namespace {

sn::SparseMatrix random_pattern_system(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  sn::SparseMatrix a(n);
  for (std::size_t k = 0; k < 4 * n; ++k) a.add(pick(rng), pick(rng), dist(rng));
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, 5.0);
  return a;
}

/// Overwrite every stored entry with fresh random values, keeping the
/// pattern (mimics a Newton reload via set_zero_keep_structure + stamping).
void refresh_values(sn::SparseMatrix& a, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  a.set_zero_keep_structure();
  const std::size_t n = a.size();
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& [c, v] : a.row(r)) {
      (void)v;
      a.set(r, c, dist(rng) + (r == c ? 5.0 : 0.0));
    }
  }
}

}  // namespace

TEST(SparseLu, RefactorMatchesFreshFactorization) {
  std::mt19937 rng(11);
  const std::size_t n = 40;
  auto a = random_pattern_system(n, rng);
  std::vector<double> b(n);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : b) v = dist(rng);

  sn::SparseLu cached(a);
  EXPECT_EQ(cached.analyze_count(), 1u);
  for (int round = 0; round < 8; ++round) {
    refresh_values(a, rng);
    cached.factor(a);
    const auto x_cached = cached.solve(b);
    const auto x_fresh = sn::SparseLu(a).solve(b);
    const auto x_dense = sn::DenseLu(a.to_dense()).solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x_cached[i], x_dense[i], 1e-9);
      EXPECT_NEAR(x_cached[i], x_fresh[i], 1e-9);
    }
  }
  // All eight rounds must have taken the numeric-only path.
  EXPECT_EQ(cached.analyze_count(), 1u);
  EXPECT_EQ(cached.refactor_count(), 8u);
}

TEST(SparseLu, RefactorDetectsPatternChange) {
  sn::SparseMatrix a(3);
  a.add(0, 0, 2.0);
  a.add(1, 1, 3.0);
  a.add(2, 2, 4.0);
  sn::SparseLu lu(a);
  EXPECT_EQ(lu.analyze_count(), 1u);

  a.add(0, 2, 1.0);  // new structural entry
  lu.factor(a);
  EXPECT_EQ(lu.analyze_count(), 2u);
  const auto x = lu.solve({2.0, 3.0, 4.0});
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
  EXPECT_NEAR(x[0], 0.5, 1e-12);  // 2*x0 + 1*x2 = 2 -> x0 = 0.5
}

TEST(SparseLu, RefactorRepivotsWhenPivotDegrades) {
  // First factorization pivots on a large diagonal; the refreshed values
  // zero that pivot out, which must trigger a fresh analysis (new pivot
  // order) instead of dividing by ~0.
  sn::SparseMatrix a(2);
  a.add(0, 0, 4.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 1.0);
  sn::SparseLu lu(a);

  a.set(0, 0, 0.0);  // degenerate leading pivot, matrix still nonsingular
  lu.factor(a);
  EXPECT_EQ(lu.analyze_count(), 2u);
  const auto x = lu.solve({1.0, 1.0});
  // [0 1; 1 1] x = [1, 1] -> x = [0, 1].
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SparseLu, RefactorToSingularThrows) {
  sn::SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 3.0);
  a.add(1, 1, 4.0);
  sn::SparseLu lu(a);

  a.set_zero_keep_structure();
  a.set(0, 0, 1.0);
  a.set(0, 1, 2.0);
  a.set(1, 0, 2.0);
  a.set(1, 1, 4.0);  // rank 1
  EXPECT_THROW(lu.factor(a), softfet::ConvergenceError);
}

TEST(LinearSolver, AutoSelectsAndSolves) {
  sn::SparseMatrix a(3);
  a.add(0, 0, 1.0);
  a.add(1, 1, 2.0);
  a.add(2, 2, 4.0);
  sn::LinearSolver solver(sn::SolverKind::kAuto);
  const auto x = solver.solve(a, {1.0, 2.0, 4.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(LinearSolver, ForcedSparseMatchesForcedDense) {
  sn::SparseMatrix a(4);
  a.add(0, 0, 3.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 3.0);
  a.add(2, 2, 1.0);
  a.add(3, 3, 2.0);
  a.add(2, 3, 0.5);
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const auto xs = sn::LinearSolver(sn::SolverKind::kSparse).solve(a, b);
  const auto xd = sn::LinearSolver(sn::SolverKind::kDense).solve(a, b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);
}
