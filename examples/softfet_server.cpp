// softfet_server: persistent simulation daemon speaking NDJSON.
//
//   $ ./softfet_server [--socket /path/daemon.sock] [--workers N]
//                      [--queue-depth N] [--state-dir DIR]
//                      [--cache-entries N] [--default-timeout seconds]
//                      [--retry-attempts N] [--isolation thread|process]
//                      [--worker-memory bytes] [--once] [--version]
//
// Requests arrive one JSON object per line on stdin and (when --socket is
// given) on a Unix domain socket; responses leave the same way. Job lines
// look like
//
//   {"id":"j1","type":"netlist","netlist":"* rc\nV1 in 0 1\nR1 in out 1k\n
//    C1 out 0 1n\n.tran 1u 10u\n.end","signals":["v(out)"]}
//   {"id":"j2","type":"monte_carlo","samples":32,"seed":7}
//
// and control lines like {"id":"c1","type":"ping"} / "stats" /
// {"id":"c2","type":"cancel","job":"j1"} /
// {"id":"c3","type":"shutdown","mode":"drain"|"now"}.
//
// Robustness contract (see src/service/server.hpp): bounded admission with
// structured `overloaded` rejections, per-job wall-clock budgets and
// cooperative cancel, bounded retry with backoff for convergence trouble,
// structured NDJSON errors for everything else — a poisoned job can never
// take the daemon down. With --state-dir, admitted jobs journal their
// request and Monte-Carlo jobs checkpoint samples, so a killed daemon
// restarted with the same --state-dir resumes in-flight jobs and finishes
// them bitwise-identically. SIGTERM and SIGINT both drain: stop admissions,
// cancel in-flight jobs cooperatively (checkpoints flush), emit their
// `cancelled` responses, exit 143/130.
//
// --isolation process forks sandboxed worker processes (rlimits, crash
// handler, heartbeats; see src/service/supervisor.hpp): a SIGSEGV, OOM, or
// infinite loop in a job kills a disposable worker, the job terminates
// with a `worker_crashed` error carrying crash forensics, and the daemon
// keeps serving. The ops runbook in README.md documents exit codes, signal
// semantics, the --state-dir layout, and the crash-report schema.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/server.hpp"
#include "util/budget.hpp"
#include "util/build_info.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace {

using namespace softfet;

/// stdout sink shared by every transport: one mutex so response lines from
/// worker threads and transport threads never interleave.
class StdoutSink {
 public:
  void operator()(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  std::mutex mutex_;
};

/// Per-connection socket sink: write() the line + newline; a dead peer
/// (EPIPE) just drops the line — the job itself keeps running and its
/// journal/checkpoint survive for a reconnecting client.
void write_line_fd(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

struct Options {
  std::string socket_path;
  std::string state_dir;
  service::ServerConfig config;
  bool once = false;  ///< exit after stdin EOF even with --socket
};

[[nodiscard]] bool stop_wanted(const service::Server& server) {
  return server.stop_requested() || util::sigint_cancel_token().requested();
}

/// Poll-driven stdin reader: wakes every 200 ms (and on signals — poll is
/// never restarted) so a SIGTERM on an idle daemon drains promptly instead
/// of hanging in a blocking read. Returns at EOF or when a stop is wanted.
void serve_stdin(service::Server& server, const service::Sink& sink) {
  std::string buffer;
  char block[4096];
  while (!stop_wanted(server)) {
    pollfd pfd{};
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, block, sizeof block);
    if (n <= 0) break;  // EOF (or error): stop reading, caller drains
    buffer.append(block, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      server.handle_line(buffer.substr(start, nl - start), sink);
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (!buffer.empty() && !stop_wanted(server)) {
    server.handle_line(buffer, sink);
  }
}

/// Accept-loop for the Unix socket transport. One thread per connection —
/// connections are expected to be few (drivers, dashboards); the bounded
/// admission queue is the actual concurrency limiter.
void serve_socket(service::Server& server, int listen_fd) {
  std::vector<std::thread> connections;
  while (!server.stop_requested() &&
         !util::sigint_cancel_token().requested()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    connections.emplace_back([&server, fd] {
      auto sink_mutex = std::make_shared<std::mutex>();
      const service::Sink sink = [fd, sink_mutex](const std::string& line) {
        const std::lock_guard<std::mutex> lock(*sink_mutex);
        write_line_fd(fd, line);
      };
      std::string buffer;
      char block[4096];
      for (;;) {
        const ssize_t n = ::read(fd, block, sizeof block);
        if (n <= 0) break;
        buffer.append(block, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos; nl = buffer.find('\n', start)) {
          server.handle_line(buffer.substr(start, nl - start), sink);
          start = nl + 1;
        }
        buffer.erase(0, start);
        if (server.stop_requested()) break;
      }
      if (!buffer.empty()) server.handle_line(buffer, sink);
      ::close(fd);
    });
  }
  for (auto& t : connections) {
    if (t.joinable()) t.join();
  }
}

int run(int argc, char** argv) {
  Options opt;
  opt.config.workers = util::hardware_threads();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opt.socket_path = need_value("--socket");
    } else if (arg == "--workers") {
      opt.config.workers =
          static_cast<std::size_t>(std::strtoul(need_value("--workers"),
                                                nullptr, 10));
    } else if (arg == "--queue-depth") {
      opt.config.queue_capacity = static_cast<std::size_t>(
          std::strtoul(need_value("--queue-depth"), nullptr, 10));
    } else if (arg == "--state-dir") {
      opt.config.state_dir = need_value("--state-dir");
    } else if (arg == "--cache-entries") {
      opt.config.cache_entries = static_cast<std::size_t>(
          std::strtoul(need_value("--cache-entries"), nullptr, 10));
    } else if (arg == "--default-timeout") {
      opt.config.default_timeout_seconds =
          std::strtod(need_value("--default-timeout"), nullptr);
    } else if (arg == "--retry-attempts") {
      opt.config.retry.max_attempts = static_cast<int>(
          std::strtol(need_value("--retry-attempts"), nullptr, 10));
    } else if (arg == "--isolation") {
      const std::string mode = need_value("--isolation");
      if (mode == "thread") {
        opt.config.isolation = service::IsolationMode::kThread;
      } else if (mode == "process") {
        opt.config.isolation = service::IsolationMode::kProcess;
      } else {
        std::fprintf(stderr, "--isolation must be 'thread' or 'process'\n");
        return 2;
      }
    } else if (arg == "--worker-memory") {
      opt.config.worker_memory_bytes = static_cast<std::size_t>(
          std::strtoull(need_value("--worker-memory"), nullptr, 10));
    } else if (arg == "--once") {
      opt.once = true;
    } else if (arg == "--version") {
      std::printf("%s\n", util::build_info_line().c_str());
      return 0;
    } else {
      std::fprintf(
          stderr,
          "usage: softfet_server [--socket path] [--workers N] "
          "[--queue-depth N] [--state-dir dir] [--cache-entries N] "
          "[--default-timeout seconds] [--retry-attempts N] "
          "[--isolation thread|process] [--worker-memory bytes] "
          "[--once] [--version]\n");
      return 2;
    }
  }

  // First SIGINT/SIGTERM: cooperative drain (jobs cancel, checkpoints
  // flush, terminal responses go out). Second signal: hard exit 128+signo.
  util::install_signal_cancel();
  std::signal(SIGPIPE, SIG_IGN);  // dead socket peers must not kill us

  service::Server server(opt.config);
  auto out = std::make_shared<StdoutSink>();
  const service::Sink sink = [out](const std::string& line) { (*out)(line); };

  // Hello line: first NDJSON line out, so clients (and crash forensics
  // consumers) can attribute the session to a build before any response.
  {
    const util::BuildInfo& b = util::build_info();
    service::JsonValue hello = service::JsonValue::object();
    hello.set("event", service::JsonValue::string("hello"));
    hello.set("server", service::JsonValue::string("softfet_server"));
    hello.set("version", service::JsonValue::string(b.project_version));
    hello.set("git_sha", service::JsonValue::string(b.git_sha));
    hello.set("compiler", service::JsonValue::string(b.compiler));
    hello.set("build_type", service::JsonValue::string(b.build_type));
    hello.set("sanitizer", service::JsonValue::string(b.sanitizer));
    hello.set("isolation",
              service::JsonValue::string(
                  opt.config.isolation == service::IsolationMode::kProcess
                      ? "process"
                      : "thread"));
    hello.set("pid",
              service::JsonValue::number(static_cast<double>(::getpid())));
    sink(hello.dump());
  }

  const std::size_t resumed = server.resume_journaled(sink);
  if (resumed > 0) {
    std::fprintf(stderr, "softfet_server: resumed %zu journaled job(s)\n",
                 resumed);
  }

  int listen_fd = -1;
  std::thread socket_thread;
  if (!opt.socket_path.empty()) {
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      std::perror("socket");
      return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt.socket_path.size() >= sizeof addr.sun_path) {
      std::fprintf(stderr, "--socket path too long\n");
      return 2;
    }
    std::strncpy(addr.sun_path, opt.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(opt.socket_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd, 16) < 0) {
      std::perror("bind/listen");
      ::close(listen_fd);
      return 1;
    }
    std::fprintf(stderr, "softfet_server: listening on %s\n",
                 opt.socket_path.c_str());
    socket_thread =
        std::thread([&server, listen_fd] { serve_socket(server, listen_fd); });
  }

  serve_stdin(server, sink);

  // With a socket transport, stdin EOF does not end the daemon (clients
  // come and go); only a shutdown request or a signal does. --once keeps
  // the scriptable one-shot behavior.
  while (listen_fd >= 0 && !opt.once && !stop_wanted(server)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (listen_fd >= 0) {
    // Unblock accept() so the socket thread observes the stop.
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    if (socket_thread.joinable()) socket_thread.join();
    ::unlink(opt.socket_path.c_str());
  }

  // Drain: a signal or {"type":"shutdown","mode":"now"} cancels in-flight
  // jobs cooperatively (their checkpoints flush and journals survive for a
  // restart); a plain shutdown/EOF lets them finish.
  const bool now = server.stop_cancels_inflight() ||
                   util::sigint_cancel_token().requested();
  server.shutdown(/*cancel_inflight=*/now);
  return util::sigint_cancel_token().requested() ? util::cancel_exit_code() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "softfet_server: fatal: %s\n", e.what());
    return 1;
  }
}
