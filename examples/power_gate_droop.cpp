// Power-gate wake-up scenario (the paper's first application case study):
// how much supply droop does waking a gated domain inflict on a neighbour
// block, and how much does a Soft-FET gate network help? Sweeps the header
// strength so you can size your own power gate.
//
//   $ ./power_gate_droop [header_m ...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/softfet.hpp"

int main(int argc, char** argv) {
  using namespace softfet;

  std::vector<double> headers{100.0, 200.0, 400.0};
  if (argc > 1) {
    headers.clear();
    for (int i = 1; i < argc; ++i) headers.push_back(std::atof(argv[i]));
  }

  std::printf(
      "header  | baseline droop | soft droop | improvement | inrush cut | "
      "wake cost\n");
  std::printf(
      "--------+----------------+------------+-------------+------------+"
      "----------\n");
  for (const double header_m : headers) {
    cells::PowerGateSpec spec;
    spec.header_m = header_m;
    const core::PowerGateStudy study = core::run_power_gate_study(spec);
    std::printf(
        "%5.0fx  | %11.1f mV | %7.1f mV | %8.1f mV | %9.2fx | %7.2fx\n",
        header_m, study.baseline.droop * 1e3, study.soft.droop * 1e3,
        study.droop_improvement() * 1e3, study.current_reduction_factor(),
        study.soft.wake_time / study.baseline.wake_time);
  }

  std::printf(
      "\nEach row wakes a %.0f pF domain behind a PMOS header of the given\n"
      "strength (multiples of a minimum PMOS) while a neighbour draws %.0f mA\n"
      "from the same rail. 'soft' drives the header gate through a PTM\n"
      "(Soft-FET power gate, paper Fig. 10).\n",
      cells::PowerGateSpec{}.domain_cap * 1e12,
      cells::PowerGateSpec{}.neighbour_current * 1e3);
  return 0;
}
