// Quickstart: build a Soft-FET inverter, simulate one falling-input
// transition, and print the paper's headline metrics next to the plain
// CMOS baseline.
//
//   $ ./quickstart
#include <cstdio>

#include "core/softfet.hpp"

int main() {
  using namespace softfet;

  // 1. Describe the experiment: a minimum-size inverter at VCC = 1 V
  //    driving an FO4 load, hit by a 30 ps falling input ramp.
  cells::InverterTestbenchSpec spec;
  spec.vcc = 1.0;
  spec.input_transition = 30e-12;
  spec.input_rising = false;

  // 2. Baseline CMOS.
  const core::TransitionMetrics base = core::characterize_inverter(spec);

  // 3. Soft-FET: the same inverter with a PTM in series with its gate.
  //    devices::PtmParams{} is the paper's VO2 card (500k/5k ohm,
  //    V_IMT = 0.4 V, T_PTM = 10 ps).
  spec.dut.ptm = devices::PtmParams{};
  const core::TransitionMetrics soft = core::characterize_inverter(spec);

  std::printf("                       baseline     Soft-FET\n");
  std::printf("peak supply current    %8.1f uA  %8.1f uA  (%.0f%% lower)\n",
              base.i_max * 1e6, soft.i_max * 1e6,
              100.0 * (1.0 - soft.i_max / base.i_max));
  std::printf("max di/dt              %8.2f A/us %7.2f A/us (%.0f%% lower)\n",
              base.max_didt / 1e6, soft.max_didt / 1e6,
              100.0 * (1.0 - soft.max_didt / base.max_didt));
  std::printf("delay (50%%->80%%)       %8.1f ps  %8.1f ps  (%.1fx cost)\n",
              base.delay * 1e12, soft.delay * 1e12, soft.delay / base.delay);
  std::printf("PTM phase transitions  %8d    %8ld\n", 0, soft.imt_count);

  // 4. Raw waveforms are in soft.tran; e.g. the gate staircase:
  const auto vg = measure::Waveform::from_tran(soft.tran, "v(dut.g)");
  std::printf("\ngate staircase: v_g(120ps)=%.3f  v_g(140ps)=%.3f  "
              "v_g(200ps)=%.3f V\n",
              vg.value(120e-12), vg.value(140e-12), vg.value(200e-12));
  return 0;
}
