// softfet-spice: run a SPICE-style netlist through the softfet simulator.
//
//   $ ./netlist_runner circuit.sp [--csv out.csv] [--signals v(out),i(vdd)]
//                      [--timeout seconds] [--determinism bitwise|relaxed]
//
// --timeout puts a wall-clock budget on every analysis; a transient that
// trips it still writes the partial waveform to --csv, prints a one-line
// diagnostic, and exits with code 3 (130 when stopped by Ctrl-C, 143 by
// SIGTERM). The first SIGINT/SIGTERM requests a cooperative stop — the
// partial waveform still flushes — and a second signal hard-exits.
//
// Supports .op, .dc and .tran (driven by the netlist's directives), the
// element cards R C L V I E G S D M P X, .model cards (nmos/pmos/ptm/d/sw),
// .param expressions, and .subckt hierarchy. The 'P' element is the PTM
// hysteretic resistor, so Soft-FET circuits are plain netlists:
//
//   * soft-fet inverter
//   .model vo2 ptm rins=500k rmet=5k vimt=0.4 vmit=0.3 tptm=10p
//   .model nch nmos
//   .model pch pmos
//   Vdd vdd 0 1
//   Vin in 0 PWL(0 1 100p 1 130p 0)
//   P1 in g vo2
//   MP out g vdd vdd pch W=240n L=40n
//   MN out g 0 0 nch W=120n L=40n
//   Cl out 0 2f
//   .tran 1p 1n
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "netlist/elaborate.hpp"
#include "netlist/measure_eval.hpp"
#include "sim/ac.hpp"
#include "sim/analyses.hpp"
#include "util/budget.hpp"
#include "util/build_info.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

using namespace softfet;

// Distinct exit codes so scripts can tell "netlist/convergence problem"
// from "ran out of budget" from "user/service-manager interrupted"
// (128 + signo: 130 for SIGINT, 143 for SIGTERM).
constexpr int kExitBudget = 3;
constexpr int kExitCancel = 130;

[[nodiscard]] int exit_code_for(util::BudgetStop stop) {
  return stop == util::BudgetStop::kCancel ? util::cancel_exit_code(kExitCancel)
                                           : kExitBudget;
}

void write_rows(const std::string& path, const std::string& axis_name,
                const std::vector<double>& axis, const sim::SignalTable& table,
                const std::vector<std::string>& wanted) {
  std::vector<std::string> columns{axis_name};
  std::vector<const std::vector<double>*> data;
  for (const auto& name : table.names()) {
    bool take = wanted.empty();
    for (const auto& w : wanted) {
      if (util::iequals(w, name)) take = true;
    }
    if (!take) continue;
    columns.push_back(name);
    data.push_back(&table.signal(name));
  }
  std::ofstream file(path);
  if (!file) throw Error("cannot open output file '" + path + "'");
  util::CsvWriter writer(file, columns);
  for (std::size_t row = 0; row < axis.size(); ++row) {
    std::vector<double> values{axis[row]};
    for (const auto* column : data) values.push_back((*column)[row]);
    writer.write_row(values);
  }
  std::printf("wrote %zu rows x %zu signals to %s\n", axis.size(),
              columns.size() - 1, path.c_str());
}

int run(int argc, char** argv) {
  std::string netlist_path;
  std::string csv_path;
  std::vector<std::string> signals;
  double timeout_seconds = 0.0;
  sim::Determinism determinism = sim::Determinism::kBitwise;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--signals" && i + 1 < argc) {
      signals = util::split(argv[++i], ",");
    } else if (arg == "--timeout" && i + 1 < argc) {
      const auto parsed = util::parse_spice_number(argv[++i]);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr, "--timeout needs a positive number of seconds\n");
        return 2;
      }
      timeout_seconds = *parsed;
    } else if (arg == "--determinism" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "bitwise") {
        determinism = sim::Determinism::kBitwise;
      } else if (mode == "relaxed") {
        determinism = sim::Determinism::kRelaxedUlp;
      } else {
        std::fprintf(stderr,
                     "--determinism must be 'bitwise' or 'relaxed' (got "
                     "'%s')\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--version") {
      std::printf("%s\n", util::build_info_line().c_str());
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      netlist_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: netlist_runner <file.sp> [--csv out.csv] "
                   "[--signals a,b,...] [--timeout seconds] "
                   "[--determinism bitwise|relaxed] [--version]\n");
      return 2;
    }
  }
  if (netlist_path.empty()) {
    std::fprintf(stderr, "usage: netlist_runner <file.sp> [--csv out.csv]\n");
    return 2;
  }

  util::install_signal_cancel();
  sim::SimOptions options;
  options.budget.max_wall_seconds = timeout_seconds;
  options.budget.cancel = &util::sigint_cancel_token();
  options.determinism = determinism;

  auto net = netlist::compile_netlist_file(netlist_path);
  if (!net.title.empty()) std::printf("* %s\n", net.title.c_str());
  net.circuit->prepare();
  std::printf("circuit: %zu nodes, %zu devices, %zu unknowns\n",
              net.circuit->node_count(), net.circuit->devices().size(),
              net.circuit->unknown_count());

  if (net.op || (!net.tran && !net.dc)) {
    const auto op = sim::dc_operating_point(*net.circuit, options);
    std::printf("\n.op results:\n");
    for (std::size_t i = 0; i < op.labels.size(); ++i) {
      std::printf("  %-20s %+.6g\n", op.labels[i].c_str(), op.x[i]);
    }
  }
  if (net.dc) {
    const auto sweep =
        sim::dc_sweep(*net.circuit, net.dc->source, net.dc->points(), options);
    std::printf("\n.dc sweep of %s: %zu points\n", net.dc->source.c_str(),
                sweep.axis.size());
    if (!csv_path.empty()) {
      write_rows(csv_path, net.dc->source, sweep.axis, sweep.table, signals);
    }
  }
  if (net.tran) {
    if (net.tran->tstep > 0.0) options.dtmax = net.tran->tstep * 10.0;
    const auto result =
        sim::run_transient(*net.circuit, net.tran->tstop, options);
    std::printf("\n.tran to %g s: %zu accepted steps, %zu rejected, "
                "%zu Newton iterations, %zu PTM events\n",
                net.tran->tstop, result.accepted_steps, result.rejected_steps,
                result.newton_iterations, result.event_count);
    if (!csv_path.empty() && !result.time.empty()) {
      write_rows(csv_path, "time", result.time, result.table, signals);
    }
    if (result.truncated) {
      // Partial CSV (if any) is already on disk; one line says why and how
      // far the run got, then the budget-specific exit code.
      const double reached = result.time.empty() ? 0.0 : result.time.back();
      std::fprintf(stderr,
                   "budget stop: %s at t=%g s of %g s (%s)\n",
                   util::to_string(result.stop_reason), reached,
                   net.tran->tstop, result.diagnostics.summary().c_str());
      return exit_code_for(result.stop_reason);
    }
    if (!net.measures.empty()) {
      std::printf("\n.measure results:\n");
      for (const auto& m : netlist::evaluate_measures(net.measures, result)) {
        std::printf("  %-16s = %.6g\n", m.name.c_str(), m.value);
      }
    }
  }
  if (net.ac) {
    const auto freqs = net.ac->frequencies();
    const auto result = sim::ac_sweep(*net.circuit, freqs);
    std::printf("\n.ac sweep: %zu frequency points\n", freqs.size());
    if (!csv_path.empty()) {
      // Magnitudes of all (or selected) signals.
      std::vector<std::string> columns{"freq"};
      std::vector<std::vector<double>> mags;
      for (const auto& name : result.names()) {
        bool take = signals.empty();
        for (const auto& w : signals) {
          if (util::iequals(w, name)) take = true;
        }
        if (!take) continue;
        columns.push_back("mag(" + name + ")");
        mags.push_back(result.magnitude(name));
      }
      std::ofstream file(csv_path);
      util::CsvWriter writer(file, columns);
      for (std::size_t row = 0; row < freqs.size(); ++row) {
        std::vector<double> values{freqs[row]};
        for (const auto& column : mags) values.push_back(column[row]);
        writer.write_row(values);
      }
      std::printf("wrote %zu rows to %s\n", freqs.size(), csv_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // One clean diagnostic line per failure class, nonzero exit. ParseError
  // carries the netlist line; ConvergenceError carries the structured
  // solver diagnostics (worst node, offending device, time, attempts)
  // already rendered into its what().
  try {
    return run(argc, argv);
  } catch (const softfet::ParseError& e) {
    // what() already carries the "line N:" prefix; line() stays available
    // for callers that want the number on its own.
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  } catch (const softfet::BudgetExceededError& e) {
    // A budget stop outside the transient (e.g. the .op phase) surfaces as
    // a throw; same one-line contract and exit codes as the truncated path.
    std::fprintf(stderr, "budget stop: %s\n", e.what());
    return exit_code_for(e.stop());
  } catch (const softfet::ConvergenceError& e) {
    std::fprintf(stderr, "convergence error: %s\n", e.what());
    return 1;
  } catch (const softfet::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  }
}
