// PTM design-space explorer: sweep the PTM card against your own gate and
// dump a CSV of (V_IMT, V_MIT, T_PTM) -> (I_MAX, di/dt, delay, transitions)
// so device engineers can pick a material target (paper Section IV).
//
//   $ ./design_explorer [out.csv]
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/softfet.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace softfet;
  const std::string out_path = argc > 1 ? argv[1] : "design_space.csv";

  cells::InverterTestbenchSpec base;
  base.vcc = 1.0;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};

  const core::TransitionMetrics baseline = [&] {
    auto spec = base;
    spec.dut.ptm.reset();
    return core::characterize_inverter(spec);
  }();

  std::ofstream file(out_path);
  util::CsvWriter csv(file, {"v_imt", "v_mit", "t_ptm", "i_max", "max_didt",
                             "delay", "imt_count", "imax_reduction_pct",
                             "delay_penalty"});

  std::vector<double> v_imts{0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
  std::vector<double> v_mits{0.15, 0.2, 0.25, 0.3};
  std::vector<double> t_ptms{5e-12, 10e-12, 20e-12};

  double best_score = 0.0;
  devices::PtmParams best;
  for (const double t_ptm : t_ptms) {
    auto spec = base;
    spec.dut.ptm->t_ptm = t_ptm;
    const auto points = core::sweep_vimt_vmit(spec, v_imts, v_mits);
    for (const auto& p : points) {
      const double reduction = 1.0 - p.metrics.i_max / baseline.i_max;
      const double penalty = p.metrics.delay / baseline.delay;
      csv.write_row({p.v_imt, p.v_mit, t_ptm, p.metrics.i_max,
                     p.metrics.max_didt, p.metrics.delay,
                     static_cast<double>(p.metrics.imt_count),
                     100.0 * reduction, penalty});
      // Score: reward I_MAX reduction, penalize delay (paper's tradeoff).
      const double score = reduction / penalty;
      if (score > best_score) {
        best_score = score;
        best = *spec.dut.ptm;
        best.v_imt = p.v_imt;
        best.v_mit = p.v_mit;
      }
    }
  }

  std::printf("wrote %zu design points to %s\n", csv.rows_written(),
              out_path.c_str());
  std::printf(
      "best reduction-per-delay card: V_IMT=%.2f V, V_MIT=%.2f V, "
      "T_PTM=%.0f ps\n",
      best.v_imt, best.v_mit, best.t_ptm * 1e12);
  std::printf("baseline reference: I_MAX=%.1f uA, delay=%.1f ps\n",
              baseline.i_max * 1e6, baseline.delay * 1e12);
  return 0;
}
