// PTM design-space explorer: sweep the PTM card against your own gate and
// dump a CSV of (V_IMT, V_MIT, T_PTM) -> (I_MAX, di/dt, delay, transitions)
// so device engineers can pick a material target (paper Section IV).
//
//   $ ./design_explorer [out.csv] [--resume state.ckpt] [--timeout seconds]
//                       [--determinism bitwise|relaxed]
//
// --resume checkpoints completed grid points (one file per T_PTM slice,
// "<state.ckpt>.t<i>") with atomic saves; a rerun with the same flag skips
// them and reproduces the uninterrupted CSV bitwise. Ctrl-C or SIGTERM
// requests a cooperative stop (in-flight points finish, checkpoints flush,
// exit 130/143); a second signal hard-exits. --timeout bounds each wall
// clock; timed-out points are recorded as failures and skipped in the CSV.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/softfet.hpp"
#include "util/budget.hpp"
#include "util/build_info.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace softfet;
  std::string out_path = "design_space.csv";
  std::string resume_path;
  double timeout_seconds = 0.0;
  sim::Determinism determinism = sim::Determinism::kBitwise;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (arg == "--timeout" && i + 1 < argc) {
      const auto parsed = util::parse_spice_number(argv[++i]);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr, "--timeout needs a positive number of seconds\n");
        return 2;
      }
      timeout_seconds = *parsed;
    } else if (arg == "--determinism" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "bitwise") {
        determinism = sim::Determinism::kBitwise;
      } else if (mode == "relaxed") {
        determinism = sim::Determinism::kRelaxedUlp;
      } else {
        std::fprintf(stderr,
                     "--determinism must be 'bitwise' or 'relaxed' (got "
                     "'%s')\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--version") {
      std::printf("%s\n", util::build_info_line().c_str());
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      out_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: design_explorer [out.csv] [--resume state.ckpt] "
                   "[--timeout seconds] [--determinism bitwise|relaxed] "
                   "[--version]\n");
      return 2;
    }
  }

  util::install_signal_cancel();
  sim::SimOptions options;
  options.budget.max_wall_seconds = timeout_seconds;
  options.budget.cancel = &util::sigint_cancel_token();
  options.determinism = determinism;

  cells::InverterTestbenchSpec base;
  base.vcc = 1.0;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};

  std::vector<double> v_imts{0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
  std::vector<double> v_mits{0.15, 0.2, 0.25, 0.3};
  std::vector<double> t_ptms{5e-12, 10e-12, 20e-12};

  try {
    const core::TransitionMetrics baseline = [&] {
      auto spec = base;
      spec.dut.ptm.reset();
      return core::characterize_inverter(spec, options);
    }();

    std::ofstream file(out_path);
    util::CsvWriter csv(file, {"v_imt", "v_mit", "t_ptm", "i_max", "max_didt",
                               "delay", "imt_count", "imax_reduction_pct",
                               "delay_penalty"});

    double best_score = 0.0;
    std::size_t failed_points = 0;
    devices::PtmParams best;
    for (std::size_t t = 0; t < t_ptms.size(); ++t) {
      const double t_ptm = t_ptms[t];
      auto spec = base;
      spec.dut.ptm->t_ptm = t_ptm;
      // One checkpoint file per T_PTM slice: each sweep_vimt_vmit call is
      // its own batch with its own grid tag.
      core::CheckpointSpec checkpoint;
      if (!resume_path.empty()) {
        checkpoint.path = resume_path + ".t" + std::to_string(t);
      }
      const auto points =
          core::sweep_vimt_vmit(spec, v_imts, v_mits, options, checkpoint);
      for (const auto& p : points) {
        if (p.failure.has_value()) {
          ++failed_points;
          std::fprintf(stderr, "skipping failed point %s: %s\n",
                       p.failure->context.c_str(), p.failure->message.c_str());
          continue;
        }
        const double reduction = 1.0 - p.metrics.i_max / baseline.i_max;
        const double penalty = p.metrics.delay / baseline.delay;
        csv.write_row({p.v_imt, p.v_mit, t_ptm, p.metrics.i_max,
                       p.metrics.max_didt, p.metrics.delay,
                       static_cast<double>(p.metrics.imt_count),
                       100.0 * reduction, penalty});
        // Score: reward I_MAX reduction, penalize delay (paper's tradeoff).
        const double score = reduction / penalty;
        if (score > best_score) {
          best_score = score;
          best = *spec.dut.ptm;
          best.v_imt = p.v_imt;
          best.v_mit = p.v_mit;
        }
      }
    }

    std::printf("wrote %zu design points to %s\n", csv.rows_written(),
                out_path.c_str());
    if (failed_points > 0) {
      std::printf("skipped %zu failed points (see stderr)\n", failed_points);
    }
    std::printf(
        "best reduction-per-delay card: V_IMT=%.2f V, V_MIT=%.2f V, "
        "T_PTM=%.0f ps\n",
        best.v_imt, best.v_mit, best.t_ptm * 1e12);
    std::printf("baseline reference: I_MAX=%.1f uA, delay=%.1f ps\n",
                baseline.i_max * 1e6, baseline.delay * 1e12);
    return 0;
  } catch (const BudgetExceededError& e) {
    std::fprintf(stderr, "budget stop: %s\n", e.what());
    if (!resume_path.empty()) {
      std::fprintf(stderr, "rerun with --resume %s to continue\n",
                   resume_path.c_str());
    }
    // 128 + signo (130 SIGINT, 143 SIGTERM) after a cooperative drain;
    // plain budget exhaustion keeps the scripted exit code 3.
    return e.stop() == util::BudgetStop::kCancel ? util::cancel_exit_code() : 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
