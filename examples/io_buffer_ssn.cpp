// I/O buffer SSN scenario (the paper's second application case study):
// sweep the number of simultaneously switching output buffers and report
// the ground-bounce with plain drivers vs Soft-FET drivers, plus the CV^2
// energy-efficiency gain from shrinking the supply guardband.
//
//   $ ./io_buffer_ssn
#include <cstdio>

#include "core/softfet.hpp"

int main() {
  using namespace softfet;

  std::printf(
      "N switch | SSN base | SSN soft | reduction | energy gain | pad delay "
      "cost\n");
  std::printf(
      "---------+----------+----------+-----------+-------------+-----------"
      "----\n");
  for (const double n : {1.0, 2.0, 4.0, 8.0}) {
    cells::IoBufferSpec spec;
    spec.simultaneous = n;
    const core::IoBufferStudy study = core::run_io_buffer_study(spec);
    std::printf(
        "%7.0f  | %5.1f mV | %5.1f mV | %8.1f%% | %10.2f%% | %10.2fx\n", n,
        study.baseline.ssn * 1e3, study.soft.ssn * 1e3,
        study.ssn_reduction_pct(), study.energy_efficiency_gain_pct(spec.vcc),
        study.soft.pad_delay / study.baseline.pad_delay);
  }

  const cells::IoBufferSpec defaults;
  std::printf(
      "\nEach buffer: 3-stage tapered driver into a %.1f pF pad; internal\n"
      "rails reach the board through %.1f nH bondwires. The soft variant\n"
      "inserts a PTM before the final driver stage (paper Fig. 11).\n"
      "Energy gain assumes the rail guardband shrinks with the SSN:\n"
      "E ~ C*(VCC+SSN)^2.\n",
      defaults.pad_cap * 1e12, defaults.bondwire_l * 1e9);
  return 0;
}
