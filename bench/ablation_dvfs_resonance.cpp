// DVFS / repetitive-switching ablation (paper Section I motivation): bursts
// of switching activity whose repetition rate sits near the PDN resonance
// excite the largest droops. A bank of drivers toggles at several burst
// frequencies; baseline vs Soft-FET drive.
#include <cmath>

#include "bench/bench_util.hpp"
#include "cells/inverter.hpp"
#include "cells/pdn.hpp"
#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace softfet;
using measure::Waveform;

/// Worst rail droop when a driver bank toggles at `f_clk` from the PDN.
double droop_at(double f_clk, bool soft) {
  sim::Circuit c;
  const cells::PdnParams pdn_params;
  const cells::Pdn pdn = cells::add_pdn(c, "pdn", "vrail", pdn_params);

  // Clock through a bank of 64 parallel drivers into a wire load.
  const auto clk = c.node("clk");
  const double period = 1.0 / f_clk;
  c.add<devices::VSource>(
      "Vclk", clk, sim::kGroundNode,
      devices::SourceSpec::pulse(0.0, 1.0, 1e-9, 30e-12, 30e-12,
                                 period / 2.0 - 30e-12, period));
  cells::InverterSpec driver;
  driver.m = 64.0;
  if (soft) {
    auto ptm = devices::PtmParams{};
    // Scaled for the 64x gate (same scaling rule as the I/O driver card).
    ptm.r_ins /= 64.0;
    ptm.r_met /= 64.0;
    driver.ptm = ptm;
  }
  const auto out = c.node("out");
  cells::add_inverter(c, "bank", clk, out, pdn.rail, sim::kGroundNode,
                      driver);
  c.add<devices::Capacitor>("Cwire", out, sim::kGroundNode, 200e-15);

  const auto result = sim::run_transient(c, 1e-9 + 12.0 * period);
  const Waveform rail = Waveform::from_tran(result, pdn.rail_signal);
  return measure::worst_droop(rail.window(1e-9, result.time.back()), 1.0);
}

}  // namespace

int main() {
  using namespace softfet;
  bench::banner("Ablation",
                "repetitive switching (DVFS-like) vs PDN resonance");

  const cells::PdnParams pdn;
  const double f_res =
      1.0 / (2.0 * M_PI * std::sqrt(pdn.l_pkg * pdn.c_decap));
  std::printf("PDN resonance: %s\n\n", util::format_si(f_res, 3, "Hz").c_str());

  util::TextTable table({"f_clk", "f_clk/f_res", "droop base [mV]",
                         "droop soft [mV]", "improvement [mV]"});
  double worst_base = 0.0;
  double worst_freq = 0.0;
  for (const double ratio : {0.25, 0.5, 1.0, 2.0}) {
    const double f = f_res * ratio;
    const double base = droop_at(f, false);
    const double soft = droop_at(f, true);
    if (base > worst_base) {
      worst_base = base;
      worst_freq = f;
    }
    table.add_row({util::format_si(f, 3, "Hz"), util::fmt_g(ratio),
                   util::fmt_g(base * 1e3, 3), util::fmt_g(soft * 1e3, 3),
                   util::fmt_g((base - soft) * 1e3, 3)});
  }
  bench::print_table(table);

  std::printf("\nFindings:\n");
  bench::claim("worst droop near the PDN resonance", "resonant excitation",
               "worst at " + util::format_si(worst_freq, 3, "Hz"));
  const double base_res = droop_at(worst_freq, false);
  const double soft_res = droop_at(worst_freq, true);
  bench::claim("Soft-FET reduces the worst-case (resonant) droop",
               "mitigation",
               util::fmt_g(base_res * 1e3, 3) + " -> " +
                   util::fmt_g(soft_res * 1e3, 3) + " mV");
  std::printf(
      "  Below resonance the Soft-FET's longer crowbar interval raises the\n"
      "  per-edge charge, so its droop can exceed the baseline there; the\n"
      "  guardband, however, is set by the resonant worst case, which the\n"
      "  softened edges improve.\n");
  return 0;
}
