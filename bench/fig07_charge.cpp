// Fig. 7: total charge comparison -- short-circuit charge and output charge
// consumed during the falling input transition (VCC = 1 V) for the Soft-FET
// and all iso-I_MAX CMOS variants.
#include "bench/bench_util.hpp"
#include "core/iso_imax.hpp"
#include "devices/ptm.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  bench::banner("Fig. 7", "short-circuit vs output charge per variant");

  // Reuse the Fig. 5 calibration so the variants are the iso-I_MAX ones.
  core::IsoImaxSpec iso;
  iso.base.input_transition = 30e-12;
  iso.base.input_rising = false;
  iso.base.dut.ptm = devices::PtmParams{};
  iso.vcc_sweep = {1.0};
  const auto calib = core::run_iso_imax_study(iso);

  struct Variant {
    const char* name;
    cells::InverterTestbenchSpec spec;
  };
  std::vector<Variant> variants;
  {
    Variant v{"Soft-FET", iso.base};
    variants.push_back(v);
  }
  {
    Variant v{"baseline", iso.base};
    v.spec.dut.ptm.reset();
    variants.push_back(v);
  }
  {
    Variant v{"HVT", iso.base};
    v.spec.dut.ptm.reset();
    v.spec.dut.nmos_model.vt0 += calib.hvt_delta_vt;
    v.spec.dut.pmos_model.vt0 += calib.hvt_delta_vt;
    variants.push_back(v);
  }
  {
    Variant v{"series-R", iso.base};
    v.spec.dut.ptm.reset();
    v.spec.dut.gate_series_r = calib.series_r;
    variants.push_back(v);
  }
  {
    Variant v{"stacked", iso.base};
    v.spec.dut.ptm.reset();
    v.spec.dut.stack = 2;
    v.spec.dut.m = calib.stack_width_mult;
    variants.push_back(v);
  }

  util::TextTable table({"variant", "Q_short-circuit [fC]", "Q_output [fC]",
                         "Q_total [fC]", "energy [fJ]"});
  double q_sc_soft = 0.0;
  double q_sc_base = 0.0;
  double q_sc_hvt = 0.0;
  double q_sc_r = 0.0;
  for (const auto& variant : variants) {
    const auto m = core::characterize_inverter(variant.spec);
    table.add_row({variant.name, util::fmt_g(m.q_short * 1e15, 3),
                   util::fmt_g(m.q_output * 1e15, 3),
                   util::fmt_g((m.q_short + m.q_output) * 1e15, 3),
                   util::fmt_g(m.energy * 1e15, 3)});
    if (std::string(variant.name) == "Soft-FET") q_sc_soft = m.q_short;
    if (std::string(variant.name) == "baseline") q_sc_base = m.q_short;
    if (std::string(variant.name) == "HVT") q_sc_hvt = m.q_short;
    if (std::string(variant.name) == "series-R") q_sc_r = m.q_short;
  }
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("Soft-FET short-circuit charge exceeds baseline",
               "increased (slow V_G tail)",
               util::fmt_g(q_sc_soft * 1e15, 3) + " vs " +
                   util::fmt_g(q_sc_base * 1e15, 3) + " fC");
  bench::claim("Soft-FET on par with HVT / series-R",
               "on par",
               util::fmt_g(q_sc_soft * 1e15, 3) + " vs HVT " +
                   util::fmt_g(q_sc_hvt * 1e15, 3) + " / R " +
                   util::fmt_g(q_sc_r * 1e15, 3) + " fC");
  bench::claim("output charge ~ equal across variants", "similar",
               "same load, see Q_output column");
  return 0;
}
