// Simulator kernel performance (google-benchmark): linear solves, DC
// operating points, transient steps/second, and a full Soft-FET inverter
// characterization.
#include <benchmark/benchmark.h>

#include <random>

#include "cells/inverter.hpp"
#include "core/characterize.hpp"
#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "sim/analyses.hpp"

namespace {

using namespace softfet;

numeric::SparseMatrix random_system(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  numeric::SparseMatrix a(n);
  for (std::size_t k = 0; k < 5 * n; ++k) a.add(pick(rng), pick(rng), dist(rng));
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, 6.0);
  return a;
}

void BM_DenseLuSolve(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng).to_dense();
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::DenseLu(a).solve(b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuSolve(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng);
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::SparseLu(a).solve(b));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(64)->Arg(256)->Arg(1024);

void BM_RcLadderDcOp(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Circuit c;
    auto prev = c.node("in");
    c.add<devices::VSource>("V1", prev, sim::kGroundNode,
                            devices::SourceSpec::dc(1.0));
    for (int i = 0; i < stages; ++i) {
      const auto next = c.node("n" + std::to_string(i));
      c.add<devices::Resistor>("R" + std::to_string(i), prev, next, 100.0);
      c.add<devices::Resistor>("Rg" + std::to_string(i), next,
                               sim::kGroundNode, 10e3);
      prev = next;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim::dc_operating_point(c));
  }
}
BENCHMARK(BM_RcLadderDcOp)->Arg(10)->Arg(100);

void BM_RcTransient(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.add<devices::VSource>(
        "Vin", in, sim::kGroundNode,
        devices::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
    c.add<devices::Resistor>("R1", in, out, 1e3);
    c.add<devices::Capacitor>("C1", out, sim::kGroundNode, 1e-9);
    state.ResumeTiming();
    const auto result = sim::run_transient(c, 10e-6);
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(result.accepted_steps),
        benchmark::Counter::kIsIterationInvariantRate);
    benchmark::DoNotOptimize(result.accepted_steps);
  }
}
BENCHMARK(BM_RcTransient);

void BM_SoftFetInverterCharacterization(benchmark::State& state) {
  cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = devices::PtmParams{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::characterize_inverter(spec));
  }
}
BENCHMARK(BM_SoftFetInverterCharacterization);

}  // namespace

BENCHMARK_MAIN();
