// Simulator kernel performance (google-benchmark): linear solves, the
// cached-refactorization path, DC operating points, transient steps/second,
// Monte Carlo scaling, and a full Soft-FET inverter characterization.
//
// Machine-readable trajectory: run with
//   perf_simulator --benchmark_format=json > BENCH_perf.json
// (or `cmake --build build --target perf_json`) so successive PRs can diff
// kernel throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <stdexcept>

#include "cells/inverter.hpp"
#include "core/characterize.hpp"
#include "core/variation.hpp"
#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "numeric/batch_lu.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/krylov.hpp"
#include "numeric/ordering.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/vecmath.hpp"
#include "sim/analyses.hpp"
#include "sim/options.hpp"
#include "util/parallel.hpp"

namespace {

using namespace softfet;

numeric::SparseMatrix random_system(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  numeric::SparseMatrix a(n);
  for (std::size_t k = 0; k < 5 * n; ++k) a.add(pick(rng), pick(rng), dist(rng));
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, 6.0);
  return a;
}

/// The seed's map-based right-looking LU (pre-CSR), kept verbatim here as
/// the reference point for the refactorization speedup claims.
class LegacyMapLu {
 public:
  explicit LegacyMapLu(const numeric::SparseMatrix& a) {
    const std::size_t n = a.size();
    rows_.resize(n);
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      rows_[i] = a.row(i);
      perm_[i] = i;
    }
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t pivot_row = n;
      double pivot_mag = 0.0;
      for (std::size_t i = k; i < n; ++i) {
        const auto it = rows_[i].find(k);
        if (it == rows_[i].end()) continue;
        const double mag = std::fabs(it->second);
        if (mag > pivot_mag) {
          pivot_mag = mag;
          pivot_row = i;
        }
      }
      if (pivot_row == n || !(pivot_mag > 0.0)) {
        throw std::runtime_error("LegacyMapLu: singular");
      }
      if (pivot_row != k) {
        std::swap(rows_[k], rows_[pivot_row]);
        std::swap(perm_[k], perm_[pivot_row]);
      }
      const auto& pivot_entries = rows_[k];
      const double pivot = pivot_entries.at(k);
      for (std::size_t i = k + 1; i < n; ++i) {
        auto& row = rows_[i];
        const auto it = row.find(k);
        if (it == row.end()) continue;
        const double factor = it->second / pivot;
        it->second = factor;
        if (factor == 0.0) continue;
        for (auto pit = pivot_entries.upper_bound(k);
             pit != pivot_entries.end(); ++pit) {
          row[pit->first] -= factor * pit->second;
        }
      }
    }
  }

  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const {
    const std::size_t n = rows_.size();
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[perm_[i]];
      const auto& row = rows_[i];
      for (auto it = row.begin(); it != row.end() && it->first < i; ++it) {
        acc -= it->second * y[it->first];
      }
      y[i] = acc;
    }
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = y[ii];
      const auto& row = rows_[ii];
      for (auto it = row.upper_bound(ii); it != row.end(); ++it) {
        acc -= it->second * x[it->first];
      }
      x[ii] = acc / row.at(ii);
    }
    return x;
  }

 private:
  std::vector<std::map<std::size_t, double>> rows_;
  std::vector<std::size_t> perm_;
};

void BM_DenseLuSolve(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng).to_dense();
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::DenseLu(a).solve(b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

// The seed's solver: full map-based factorization on every call (what every
// Newton iteration used to pay).
void BM_LegacyMapLuFactorSolve(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng);
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LegacyMapLu(a).solve(b));
  }
}
BENCHMARK(BM_LegacyMapLuFactorSolve)->Arg(64)->Arg(256)->Arg(1024);

// Fresh CSR factorization each call (symbolic analysis every time).
void BM_SparseLuSolve(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng);
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::SparseLu(a).solve(b));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(64)->Arg(256)->Arg(1024);

// The hot path after this PR: analyze once, then numeric refactor + solve on
// every call with the values refreshed in place (fixed pattern), exactly the
// shape of a Newton iteration.
void BM_SparseLuRefactorSolve(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_system(n, rng);
  const std::vector<double> b(n, 1.0);
  numeric::SparseLu lu(a);
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  if (lu.analyze_count() != 1) {
    state.SkipWithError("refactor path fell back to analysis");
  }
  state.counters["refactors"] =
      static_cast<double>(lu.refactor_count());
}
BENCHMARK(BM_SparseLuRefactorSolve)->Arg(64)->Arg(256)->Arg(1024);

/// PDN-grid conductance matrix: a 5-point rail mesh plus one decap leaf
/// node per tile, with all rail nodes numbered before all leaf nodes —
/// the stamp order make_pdn_grid produces. Symmetric positive definite,
/// arg = grid side, 2*side^2 unknowns. The rail-to-leaf couplings put
/// nonzeros a full side^2 off the diagonal, which is what makes natural
/// (stamping) order fill the whole band and fill-reducing ordering pay.
numeric::SparseMatrix grid_system(std::size_t side) {
  const std::size_t tiles = side * side;
  numeric::SparseMatrix a(2 * tiles);
  const auto id = [side](std::size_t r, std::size_t c) {
    return r * side + c;
  };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double diag = 1e-3;  // leak keeps the Laplacian nonsingular
      if (c + 1 < side) {
        a.add(id(r, c), id(r, c + 1), -1.0);
        a.add(id(r, c + 1), id(r, c), -1.0);
        diag += 1.0;
      }
      if (c > 0) diag += 1.0;
      if (r + 1 < side) {
        a.add(id(r, c), id(r + 1, c), -1.0);
        a.add(id(r + 1, c), id(r, c), -1.0);
        diag += 1.0;
      }
      if (r > 0) diag += 1.0;
      // Decap leaf through its ESR (the companion-model conductance).
      const std::size_t leaf = tiles + id(r, c);
      a.add(id(r, c), leaf, -0.5);
      a.add(leaf, id(r, c), -0.5);
      a.add(leaf, leaf, 0.5 + 1e-3);
      diag += 0.5;
      a.add(id(r, c), id(r, c), diag);
    }
  }
  return a;
}

// Natural-order factorization of the mesh: the banded worst case the AMD
// ordering exists to avoid. Capped at 16x16 — the trend line against
// BM_GridLuFactorAmd at the same Arg (and BM_GridOrderingFill's counters
// at the full scale) already tells the story; natural order at 32x32
// costs over a minute per factorization.
void BM_GridLuFactorNatural(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto a = grid_system(side);
  const std::vector<double> b(a.size(), 1.0);
  for (auto _ : state) {
    numeric::SparseLu lu;
    lu.set_ordering(numeric::OrderingKind::kNatural);
    lu.factor(a);
    benchmark::DoNotOptimize(lu.solve(b));
    state.counters["fill"] = lu.fill_ratio();
  }
}
BENCHMARK(BM_GridLuFactorNatural)->Arg(8)->Arg(16);

void BM_GridLuFactorAmd(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto a = grid_system(side);
  const std::vector<double> b(a.size(), 1.0);
  for (auto _ : state) {
    numeric::SparseLu lu;
    lu.set_ordering(numeric::OrderingKind::kAmd);
    lu.factor(a);
    benchmark::DoNotOptimize(lu.solve(b));
    state.counters["fill"] = lu.fill_ratio();
  }
}
BENCHMARK(BM_GridLuFactorAmd)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Ordering cost and predicted-fill comparison at the 4k-unknown scale the
// droop study runs at. The counters record the headline ratio: natural
// banded fill vs AMD fill on the same pattern.
void BM_GridOrderingFill(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto a = grid_system(side);
  const auto adjacency = numeric::pattern_adjacency(a);
  std::size_t fill_amd = 0;
  for (auto _ : state) {
    const auto order = numeric::amd_order(adjacency);
    fill_amd = numeric::symbolic_fill(adjacency, order);
    benchmark::DoNotOptimize(fill_amd);
  }
  const std::size_t fill_natural = numeric::symbolic_fill_natural(adjacency);
  state.counters["fill_natural"] = static_cast<double>(fill_natural);
  state.counters["fill_amd"] = static_cast<double>(fill_amd);
  state.counters["fill_reduction"] =
      static_cast<double>(fill_natural) / static_cast<double>(fill_amd);
}
BENCHMARK(BM_GridOrderingFill)->Arg(64);

// The transient hot path on the big mesh: AMD-ordered analyze once, then
// numeric refactor + solve per step.
void BM_GridLuRefactorSolve(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto a = grid_system(side);
  const std::vector<double> b(a.size(), 1.0);
  numeric::SparseLu lu;
  lu.set_ordering(numeric::OrderingKind::kAmd);
  lu.factor(a);
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  if (lu.analyze_count() != 1) {
    state.SkipWithError("refactor path fell back to analysis");
  }
  state.counters["fill"] = lu.fill_ratio();
}
BENCHMARK(BM_GridLuRefactorSolve)->Arg(32)->Arg(64);

// Stale-preconditioner CG on the mesh: the LU of the unperturbed matrix
// keeps serving while the values drift 5% (a Newton/transient step), which
// is the iterative policy's steady state. Compare directly against
// BM_GridLuRefactorSolve at the same Arg.
void BM_GridCgStalePrecond(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto a = grid_system(side);
  numeric::SparseLu precond;
  precond.set_ordering(numeric::OrderingKind::kAmd);
  precond.factor(a);
  // Node-dependent drift: a uniform shift would make the stale LU a
  // perfect preconditioner (CG converges in one step) and hide the cost.
  auto drifted = grid_system(side);
  for (std::size_t i = 0; i < drifted.size(); ++i) {
    drifted.add(i, i, 0.05 * static_cast<double>(i % 8 + 1) / 8.0);
  }
  const std::vector<double> b(a.size(), 1.0);
  std::vector<double> x(a.size(), 0.0);
  numeric::KrylovResult result;
  for (auto _ : state) {
    x.assign(x.size(), 0.0);
    result = numeric::conjugate_gradient(drifted, b, x, &precond);
    benchmark::DoNotOptimize(x.data());
  }
  if (!result.converged) state.SkipWithError("CG did not converge");
  state.counters["iterations"] = static_cast<double>(result.iterations);
}
BENCHMARK(BM_GridCgStalePrecond)->Arg(32)->Arg(64);

void BM_RcLadderDcOp(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Circuit c;
    auto prev = c.node("in");
    c.add<devices::VSource>("V1", prev, sim::kGroundNode,
                            devices::SourceSpec::dc(1.0));
    for (int i = 0; i < stages; ++i) {
      const auto next = c.node("n" + std::to_string(i));
      c.add<devices::Resistor>("R" + std::to_string(i), prev, next, 100.0);
      c.add<devices::Resistor>("Rg" + std::to_string(i), next,
                               sim::kGroundNode, 10e3);
      prev = next;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim::dc_operating_point(c));
  }
}
BENCHMARK(BM_RcLadderDcOp)->Arg(10)->Arg(100);

void BM_RcTransient(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.add<devices::VSource>(
        "Vin", in, sim::kGroundNode,
        devices::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
    c.add<devices::Resistor>("R1", in, out, 1e3);
    c.add<devices::Capacitor>("C1", out, sim::kGroundNode, 1e-9);
    state.ResumeTiming();
    const auto result = sim::run_transient(c, 10e-6);
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(result.accepted_steps),
        benchmark::Counter::kIsIterationInvariantRate);
    benchmark::DoNotOptimize(result.accepted_steps);
  }
}
BENCHMARK(BM_RcTransient);

// RC-ladder transient above the dense threshold: every timestep rides the
// cached sparse refactorization.
void BM_RcLadderTransient(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Circuit c;
    auto prev = c.node("in");
    c.add<devices::VSource>(
        "Vin", prev, sim::kGroundNode,
        devices::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
    for (int i = 0; i < stages; ++i) {
      const auto next = c.node("n" + std::to_string(i));
      c.add<devices::Resistor>("R" + std::to_string(i), prev, next, 100.0);
      c.add<devices::Capacitor>("C" + std::to_string(i), next,
                                sim::kGroundNode, 1e-12);
      prev = next;
    }
    state.ResumeTiming();
    const auto result = sim::run_transient(c, 1e-6);
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(result.accepted_steps),
        benchmark::Counter::kIsIterationInvariantRate);
    benchmark::DoNotOptimize(result.accepted_steps);
  }
}
BENCHMARK(BM_RcLadderTransient)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_SoftFetInverterCharacterization(benchmark::State& state) {
  cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = devices::PtmParams{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::characterize_inverter(spec));
  }
}
BENCHMARK(BM_SoftFetInverterCharacterization);

// Monte Carlo variability study, serial vs. thread pool (arg = worker
// count; 0 lets the pool use every hardware thread). Statistics are
// identical across arguments — only the wall clock moves.
void BM_PtmMonteCarlo(benchmark::State& state) {
  cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = devices::PtmParams{};
  core::MonteCarloSpec mc;
  mc.samples = 8;
  mc.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ptm_monte_carlo(spec, mc));
  }
  state.counters["workers"] = static_cast<double>(
      mc.threads == 0 ? util::hardware_threads()
                      : static_cast<std::size_t>(mc.threads));
}
BENCHMARK(BM_PtmMonteCarlo)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Headline Monte-Carlo throughput for the batched lockstep engine: arg =
// lane width. 1 pins the scalar oracle path; 8 is the automatic batch
// width (what MonteCarloSpec::lanes = 0 resolves to). Statistics are
// bitwise identical across widths — only samples/s moves.
void BM_PtmMonteCarloLanes(benchmark::State& state) {
  cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = devices::PtmParams{};
  core::MonteCarloSpec mc;
  mc.samples = 64;
  mc.threads = 1;
  mc.lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ptm_monte_carlo(spec, mc));
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(mc.samples),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PtmMonteCarloLanes)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Same study under SimOptions::determinism = kRelaxedUlp: batched lanes
// evaluate device models through the numeric/vecmath SIMD kernels instead
// of one libm call per device per lane. Results agree with the bitwise
// engine to the documented ULP bounds (see tests/core_relaxed_equivalence
// for the oracle); this is the headline number for the relaxed mode.
void BM_PtmMonteCarloRelaxed(benchmark::State& state) {
  cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = devices::PtmParams{};
  core::MonteCarloSpec mc;
  mc.samples = 64;
  mc.threads = 1;
  mc.lanes = static_cast<int>(state.range(0));
  sim::SimOptions options;
  options.determinism = sim::Determinism::kRelaxedUlp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ptm_monte_carlo(spec, mc, options));
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(mc.samples),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PtmMonteCarloRelaxed)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Device-model kernel microbenchmarks: the vectorized exponential and the
// fused softplus+sigmoid (the Soft-FET conduction law's inner pair)
// against one libm call per element. items_processed = array elements, so
// the reported items/s compares directly across the four benches.
void BM_VecmathExp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-80.0, 80.0);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = dist(rng);
  for (auto _ : state) {
    numeric::vecmath::exp_v(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VecmathExp)->Arg(1024);

void BM_VecmathExpLibm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-80.0, 80.0);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = dist(rng);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VecmathExpLibm)->Arg(1024);

void BM_VecmathSoftplusSigmoid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-60.0, 60.0);
  std::vector<double> x(n), sp(n), sg(n);
  for (auto& v : x) v = dist(rng);
  for (auto _ : state) {
    numeric::vecmath::softplus_sigmoid_v(x.data(), sp.data(), sg.data(), n);
    benchmark::DoNotOptimize(sp.data());
    benchmark::DoNotOptimize(sg.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VecmathSoftplusSigmoid)->Arg(1024);

void BM_VecmathSoftplusSigmoidLibm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-60.0, 60.0);
  std::vector<double> x(n), sp(n), sg(n);
  for (auto& v : x) v = dist(rng);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      sp[i] = std::log1p(std::exp(-std::fabs(x[i]))) + std::max(x[i], 0.0);
      sg[i] = 1.0 / (1.0 + std::exp(-x[i]));
    }
    benchmark::DoNotOptimize(sp.data());
    benchmark::DoNotOptimize(sg.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VecmathSoftplusSigmoidLibm)->Arg(1024);

// Factor-path breakdown of the SoA batch kernel. The timed loop refills the
// lane-minor buffer and factors all 8 lanes, mirroring the per-Newton-
// iteration scatter + factor the lockstep engine pays; the counter reports
// per-system throughput so this compares directly against one-at-a-time
// BM_DenseLuFactor at the same Arg.
void BM_BatchLuFactor(benchmark::State& state) {
  constexpr std::size_t kLanes = 8;
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng).to_dense();
  numeric::BatchDenseLu lu;
  lu.configure(n, kLanes);
  std::vector<std::uint8_t> ok(kLanes, 0);
  for (auto _ : state) {
    double* v = lu.values();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t s = 0; s < kLanes; ++s) {
          v[(r * n + c) * kLanes + s] = a(r, c);
        }
      }
    }
    lu.factor(kLanes, ok.data());
    benchmark::DoNotOptimize(lu.values());
  }
  state.counters["systems/s"] = benchmark::Counter(
      static_cast<double>(kLanes),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BatchLuFactor)->Arg(8)->Arg(16);

// Scalar reference for BM_BatchLuFactor: the same matrix factored once per
// call through DenseLu (copy + factor, the scalar Newton path's cost shape).
void BM_DenseLuFactor(benchmark::State& state) {
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng).to_dense();
  numeric::DenseLu lu;
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.min_pivot());
  }
  state.counters["systems/s"] = benchmark::Counter(
      1.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DenseLuFactor)->Arg(8)->Arg(16);

// Multi-RHS substitution throughput on a factored batch (the solve half of
// the lockstep Newton iteration).
void BM_BatchLuSolve(benchmark::State& state) {
  constexpr std::size_t kLanes = 8;
  std::mt19937 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_system(n, rng).to_dense();
  numeric::BatchDenseLu lu;
  lu.configure(n, kLanes);
  double* v = lu.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t s = 0; s < kLanes; ++s) {
        v[(r * n + c) * kLanes + s] = a(r, c);
      }
    }
  }
  std::vector<std::uint8_t> ok(kLanes, 0);
  lu.factor(kLanes, ok.data());
  std::vector<double> b(n * kLanes, 1.0);
  std::vector<double> x(n * kLanes, 0.0);
  for (auto _ : state) {
    lu.solve(kLanes, b.data(), x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["systems/s"] = benchmark::Counter(
      static_cast<double>(kLanes),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BatchLuSolve)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
