// Fig. 11: Soft-FET I/O buffer -- simultaneous switching noise on the
// internal rails, SSN improvement vs input transition time, and the CV^2
// energy-efficiency gain from the reduced guardband.
#include "bench/bench_util.hpp"
#include "core/case_studies.hpp"
#include "measure/waveform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  using measure::Waveform;
  bench::banner("Fig. 11", "I/O buffer SSN: baseline vs Soft-FET driver");

  cells::IoBufferSpec spec;
  std::printf(
      "Pad: %.1f pF x %.0f simultaneous buffers; bondwire %.1f nH + %.1f Ohm\n"
      "Driver PTM card: R_INS=%s R_MET=%s V_IMT=%.1f V_MIT=%.1f\n\n",
      spec.pad_cap * 1e12, spec.simultaneous, spec.bondwire_l * 1e9,
      spec.bondwire_r,
      util::format_si(cells::IoBufferSpec::default_driver_ptm().r_ins, 3).c_str(),
      util::format_si(cells::IoBufferSpec::default_driver_ptm().r_met, 3).c_str(),
      cells::IoBufferSpec::default_driver_ptm().v_imt,
      cells::IoBufferSpec::default_driver_ptm().v_mit);

  const auto study = core::run_io_buffer_study(spec);

  const Waveform vssi_b = Waveform::from_tran(study.baseline.tran, "v(vssi)");
  const Waveform vssi_s = Waveform::from_tran(study.soft.tran, "v(vssi)");
  const Waveform pad_b = Waveform::from_tran(study.baseline.tran, "v(pad)");
  const Waveform pad_s = Waveform::from_tran(study.soft.tran, "v(pad)");
  util::TextTable wave({"t [ns]", "vssi base [mV]", "vssi soft [mV]",
                        "pad base [V]", "pad soft [V]"});
  for (double t = 1.9e-9; t <= 4.4e-9; t += 0.25e-9) {
    wave.add_row({util::fmt_g(t * 1e9, 3),
                  util::fmt_g(vssi_b.value(t) * 1e3, 3),
                  util::fmt_g(vssi_s.value(t) * 1e3, 3),
                  util::fmt_g(pad_b.value(t), 3),
                  util::fmt_g(pad_s.value(t), 3)});
  }
  bench::print_table(wave);

  std::printf("\nOutcome metrics:\n");
  util::TextTable table({"variant", "VCC bounce [mV]", "GND bounce [mV]",
                         "SSN [mV]", "peak I [mA]", "pad delay [ps]"});
  table.add_row({"baseline", util::fmt_g(study.baseline.vcc_bounce * 1e3, 3),
                 util::fmt_g(study.baseline.gnd_bounce * 1e3, 3),
                 util::fmt_g(study.baseline.ssn * 1e3, 3),
                 util::fmt_g(study.baseline.peak_current * 1e3, 3),
                 util::fmt_g(study.baseline.pad_delay * 1e12, 4)});
  table.add_row({"Soft-FET", util::fmt_g(study.soft.vcc_bounce * 1e3, 3),
                 util::fmt_g(study.soft.gnd_bounce * 1e3, 3),
                 util::fmt_g(study.soft.ssn * 1e3, 3),
                 util::fmt_g(study.soft.peak_current * 1e3, 3),
                 util::fmt_g(study.soft.pad_delay * 1e12, 4)});
  bench::print_table(table);

  // SSN improvement vs input transition time (the figure's inset trend).
  std::printf("\nSSN reduction vs input transition time:\n");
  util::TextTable trend(
      {"transition [ps]", "SSN base [mV]", "SSN soft [mV]", "reduction [%]"});
  double first_red = 0.0;
  double last_red = 0.0;
  for (const double tr : {50e-12, 100e-12, 200e-12, 400e-12}) {
    auto s = spec;
    s.input_transition = tr;
    const auto st = core::run_io_buffer_study(s);
    if (first_red == 0.0) first_red = st.ssn_reduction_pct();
    last_red = st.ssn_reduction_pct();
    trend.add_row({util::fmt_g(tr * 1e12),
                   util::fmt_g(st.baseline.ssn * 1e3, 3),
                   util::fmt_g(st.soft.ssn * 1e3, 3),
                   util::fmt_g(st.ssn_reduction_pct(), 3)});
  }
  bench::print_table(trend);

  std::printf("\nSummary vs paper:\n");
  bench::claim("SSN reduction with Soft-FET driver", "46%",
               util::fmt_g(study.ssn_reduction_pct(), 3) + "%");
  bench::claim("energy-efficiency gain at VCC = 1 V", "8.8%",
               util::fmt_g(study.energy_efficiency_gain_pct(1.0), 3) + "%");
  bench::claim("SSN improvement grows with transition time",
               "higher at slower inputs",
               util::fmt_g(first_red, 3) + "% -> " + util::fmt_g(last_red, 3) +
                   "%");
  return 0;
}
