// Fig. 1 companion: PDN input impedance vs frequency (AC analysis).
//
// The droop of Fig. 1 is the time-domain face of the PDN's impedance peak:
// |Z(f)| seen by the load rises to a maximum at the package-L / die-C
// resonance. Current transients with energy at that frequency (fast di/dt)
// produce the largest droops -- the motivation for softening di/dt.
#include <cmath>

#include "bench/bench_util.hpp"
#include "cells/pdn.hpp"
#include "devices/sources.hpp"
#include "sim/ac.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  bench::banner("Fig. 1 (AC companion)", "PDN impedance |Z(f)| at the rail");

  sim::Circuit c;
  const cells::PdnParams params = cells::PdnParams::zhang_islped13();
  const cells::Pdn pdn = cells::add_pdn(c, "pdn", "rail", params);
  auto probe = devices::SourceSpec::dc(0.0);
  probe.set_ac_magnitude(1.0);  // 1 A AC probe: |v(rail)| == |Z|
  c.add<devices::ISource>("Iprobe", pdn.rail, sim::kGroundNode, probe);

  const auto freqs = sim::decade_frequencies(1e6, 100e9, 4);
  const auto result = sim::ac_sweep(c, freqs);
  const auto z = result.magnitude("v(rail)");

  util::TextTable table({"f [Hz]", "|Z| [mOhm]", "phase [deg]"});
  const auto phase = result.phase_deg("v(rail)");
  std::size_t peak = 0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (z[i] > z[peak]) peak = i;
    table.add_row({util::format_si(freqs[i], 3), util::fmt_g(z[i] * 1e3, 4),
                   util::fmt_g(phase[i], 3)});
  }
  bench::print_table(table);

  const double f_res = 1.0 / (2.0 * M_PI * std::sqrt(params.l_pkg *
                                                     params.c_decap));
  std::printf("\nSummary:\n");
  bench::claim("impedance peak at the L-C resonance",
               util::format_si(f_res, 3, "Hz"),
               util::format_si(freqs[peak], 3, "Hz") + " (|Z| = " +
                   util::fmt_g(z[peak] * 1e3, 3) + " mOhm)");
  bench::claim("low-frequency |Z| ~ R_pkg",
               util::fmt_g(params.r_pkg * 1e3, 3) + " mOhm",
               util::fmt_g(z.front() * 1e3, 3) + " mOhm");
  bench::claim("di/dt energy near the peak causes the Fig. 1 droop",
               "motivation", "see fig01_pdn_droop (time domain)");
  return 0;
}
