// Fig. 9: effect of the input slew rate on the PTM switching behaviour --
// V_G waveforms for three slews and the %I_MAX reduction trend.
#include "bench/bench_util.hpp"
#include "core/sweeps.hpp"
#include "devices/ptm.hpp"
#include "measure/waveform.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  using measure::Waveform;
  bench::banner("Fig. 9", "input slew sweep: soft switching vs slew rate");

  cells::InverterTestbenchSpec base;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};

  // V_G waveforms for three slews (normalized time axis: t / transition).
  std::printf("V_G waveforms (falling input, start at 100 ps):\n");
  util::TextTable vg_table(
      {"t/t_edge", "slew 15 ps", "slew 60 ps", "slew 240 ps"});
  std::vector<Waveform> waves;
  std::vector<double> slews{15e-12, 60e-12, 240e-12};
  std::vector<long> imts;
  for (const double slew : slews) {
    auto spec = base;
    spec.input_transition = slew;
    const auto m = core::characterize_inverter(spec);
    waves.push_back(Waveform::from_tran(m.tran, "v(dut.g)"));
    imts.push_back(m.imt_count);
  }
  for (double frac = 0.0; frac <= 4.01; frac += 0.4) {
    std::vector<std::string> row{util::fmt_g(frac, 2)};
    for (std::size_t i = 0; i < slews.size(); ++i) {
      row.push_back(
          util::fmt_g(waves[i].value(100e-12 + frac * slews[i]), 3));
    }
    vg_table.add_row(std::move(row));
  }
  bench::print_table(vg_table);
  std::printf("IMT counts: 15 ps -> %ld, 60 ps -> %ld, 240 ps -> %ld\n\n",
              imts[0], imts[1], imts[2]);

  // %I_MAX reduction vs slew.
  const std::vector<double> sweep_slews{10e-12, 20e-12, 30e-12, 60e-12,
                                        120e-12, 240e-12, 480e-12};
  const auto points = core::sweep_slew(base, sweep_slews);
  util::TextTable table({"slew [ps]", "slew/T_PTM", "I_MAX base [uA]",
                         "I_MAX soft [uA]", "I_MAX reduction [%]",
                         "delay penalty [x]"});
  for (const auto& p : points) {
    table.add_row(
        {util::fmt_g(p.input_transition * 1e12),
         util::fmt_g(p.input_transition / base.dut.ptm->t_ptm, 3),
         util::fmt_g(p.baseline.i_max * 1e6, 4),
         util::fmt_g(p.soft.i_max * 1e6, 4),
         util::fmt_g(p.imax_reduction_pct(), 3),
         util::fmt_g(p.soft.delay / p.baseline.delay, 3)});
  }
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("soft switching vanishes at slow slew", "vanishes",
               util::fmt_g(points.front().imax_reduction_pct(), 3) +
                   "% at 10 ps -> " +
                   util::fmt_g(points.back().imax_reduction_pct(), 3) +
                   "% at 480 ps");
  bench::claim("delay penalty grows at slow slew", "increases",
               util::fmt_g(points.front().soft.delay /
                               points.front().baseline.delay, 3) +
                   "x -> " +
                   util::fmt_g(points.back().soft.delay /
                                   points.back().baseline.delay, 3) +
                   "x");
  bench::claim("best operation near slew/T_PTM = 1.5-3", "recommended window",
               "see ablation_slew_tptm_ratio bench");
  return 0;
}
