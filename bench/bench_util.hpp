// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace softfet::bench {

/// Standard bench banner: which paper artifact this binary regenerates.
inline void banner(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s -- %s\n", id.c_str(), title.c_str());
  std::printf("Soft-FET reproduction (Teja & Kulkarni, DAC 2018)\n");
  std::printf("==============================================================\n");
}

/// One "paper claim vs measured" line in the closing summary.
inline void claim(const std::string& what, const std::string& paper,
                  const std::string& measured) {
  std::printf("  %-44s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

inline void print_table(const util::TextTable& table) {
  table.print(std::cout);
  std::cout.flush();
}

}  // namespace softfet::bench
