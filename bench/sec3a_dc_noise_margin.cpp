// Section III.A: "The DC characteristics of the inverter such as noise
// margin and dc output level are unperturbed by the presence of the PTM"
// (unlike the Hyper-FET, whose source-side PTM costs DC headroom).
//
// This bench sweeps the VTC of the baseline and Soft-FET inverters,
// extracts the unity-gain noise margins, and contrasts the ON-current
// cost of a Hyper-FET-style series PTM.
#include <cmath>

#include "bench/bench_util.hpp"
#include "cells/hyperfet.hpp"
#include "cells/inverter.hpp"
#include "devices/ptm.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "sim/analyses.hpp"
#include "util/table.hpp"

namespace {

using namespace softfet;
namespace t40 = devices::tech40;

struct Vtc {
  std::vector<double> vin;
  std::vector<double> vout;
};

Vtc sweep_vtc(bool soft) {
  sim::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<devices::VSource>("Vdd", vdd, sim::kGroundNode,
                          devices::SourceSpec::dc(1.0));
  c.add<devices::VSource>("Vin", in, sim::kGroundNode,
                          devices::SourceSpec::dc(0.0));
  cells::InverterSpec spec;
  if (soft) spec.ptm = devices::PtmParams{};
  cells::add_inverter(c, "dut", in, out, vdd, sim::kGroundNode, spec);

  Vtc vtc;
  for (int i = 0; i <= 100; ++i) vtc.vin.push_back(i * 0.01);
  const auto sweep = sim::dc_sweep(c, "Vin", vtc.vin);
  vtc.vout = sweep.table.signal("v(out)");
  return vtc;
}

struct NoiseMargins {
  double v_il = 0.0;  ///< last input with gain > -1 on the high side
  double v_ih = 0.0;  ///< first input with gain > -1 on the low side
  double v_ol = 0.0;
  double v_oh = 0.0;
  [[nodiscard]] double nml() const { return v_il - v_ol; }
  [[nodiscard]] double nmh() const { return v_oh - v_ih; }
};

NoiseMargins margins_of(const Vtc& vtc) {
  NoiseMargins nm;
  nm.v_oh = vtc.vout.front();
  nm.v_ol = vtc.vout.back();
  bool found_il = false;
  for (std::size_t i = 1; i < vtc.vin.size(); ++i) {
    const double gain = (vtc.vout[i] - vtc.vout[i - 1]) /
                        (vtc.vin[i] - vtc.vin[i - 1]);
    if (!found_il && gain < -1.0) {
      nm.v_il = vtc.vin[i - 1];
      found_il = true;
    }
    if (found_il && gain > -1.0) {
      nm.v_ih = vtc.vin[i];
      break;
    }
  }
  return nm;
}

}  // namespace

int main() {
  bench::banner("Sec. III.A", "DC noise margins: PTM at the gate is free");

  const Vtc base = sweep_vtc(false);
  const Vtc soft = sweep_vtc(true);
  const NoiseMargins nm_base = margins_of(base);
  const NoiseMargins nm_soft = margins_of(soft);

  util::TextTable table({"variant", "V_OH [V]", "V_OL [mV]", "V_IL [V]",
                         "V_IH [V]", "NML [V]", "NMH [V]"});
  table.add_row({"baseline", util::fmt_g(nm_base.v_oh, 4),
                 util::fmt_g(nm_base.v_ol * 1e3, 3),
                 util::fmt_g(nm_base.v_il, 3), util::fmt_g(nm_base.v_ih, 3),
                 util::fmt_g(nm_base.nml(), 3), util::fmt_g(nm_base.nmh(), 3)});
  table.add_row({"Soft-FET", util::fmt_g(nm_soft.v_oh, 4),
                 util::fmt_g(nm_soft.v_ol * 1e3, 3),
                 util::fmt_g(nm_soft.v_il, 3), util::fmt_g(nm_soft.v_ih, 3),
                 util::fmt_g(nm_soft.nml(), 3), util::fmt_g(nm_soft.nmh(), 3)});
  bench::print_table(table);

  // Worst-case VTC deviation between the two.
  double worst = 0.0;
  for (std::size_t i = 0; i < base.vout.size(); ++i) {
    worst = std::max(worst, std::fabs(base.vout[i] - soft.vout[i]));
  }

  // Hyper-FET contrast: the source-side PTM costs ON current even in DC.
  devices::PtmParams hyper_ptm;
  hyper_ptm.r_ins = 2.5e9;
  hyper_ptm.r_met = 2e3;  // deliberately chunky metallic resistance
  hyper_ptm.v_imt = 0.2;
  hyper_ptm.v_mit = 5e-5;
  const auto dims = t40::min_nmos_dims();
  const auto plain_curve = cells::mosfet_transfer_curve(t40::nmos(), dims, 1.0, 1.0, 11);
  const auto hyper_curve =
      cells::hyperfet_transfer_curve(t40::nmos(), dims, hyper_ptm, 1.0, 1.0, 11);
  const double ion_loss =
      100.0 * (1.0 - hyper_curve.id.back() / plain_curve.id.back());

  std::printf("\nSummary vs paper:\n");
  bench::claim("Soft-FET DC VTC identical to baseline", "unperturbed",
               "max deviation " + util::fmt_g(worst * 1e3, 3) + " mV");
  bench::claim("noise margins unperturbed", "unperturbed",
               "dNML = " + util::fmt_g((nm_soft.nml() - nm_base.nml()) * 1e3, 2) +
                   " mV, dNMH = " +
                   util::fmt_g((nm_soft.nmh() - nm_base.nmh()) * 1e3, 2) + " mV");
  bench::claim("Hyper-FET (source PTM) pays a DC ON-current cost",
               "series-path degradation",
               util::fmt_g(ion_loss, 3) + "% Ion loss with a 2k metallic PTM");
  return 0;
}
