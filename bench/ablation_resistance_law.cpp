// Model ablation (DESIGN.md): how the PTM resistance-transition law affects
// the Soft-FET figures of merit. The linear law recovers resistance sharply
// after an MIT (crisp staircase steps); the logarithmic law lingers near
// R_MET, letting the gate ride the input further down.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "core/characterize.hpp"
#include "devices/ptm.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  bench::banner("Ablation", "PTM resistance law: linear vs logarithmic");

  cells::InverterTestbenchSpec base;
  base.input_transition = 30e-12;
  base.input_rising = false;

  const auto plain = core::characterize_inverter(base);

  util::TextTable table({"law", "I_MAX [uA]", "reduction [%]", "di/dt [A/us]",
                         "delay [ps]", "IMT count"});
  core::TransitionMetrics linear_m;
  core::TransitionMetrics log_m;
  for (const auto law : {devices::PtmResistanceLaw::kLinear,
                         devices::PtmResistanceLaw::kLogarithmic}) {
    auto spec = base;
    spec.dut.ptm = devices::PtmParams{};
    spec.dut.ptm->law = law;
    auto m = core::characterize_inverter(spec);
    const bool linear = law == devices::PtmResistanceLaw::kLinear;
    table.add_row({linear ? "linear" : "logarithmic",
                   util::fmt_g(m.i_max * 1e6, 4),
                   util::fmt_g(100.0 * (1.0 - m.i_max / plain.i_max), 3),
                   util::fmt_g(m.max_didt / 1e6, 3),
                   util::fmt_g(m.delay * 1e12, 4),
                   std::to_string(m.imt_count)});
    (linear ? linear_m : log_m) = std::move(m);
  }
  bench::print_table(table);

  // The V_IMT sensitivity is where the laws really differ: the linear law
  // preserves the paper's Fig. 6 dip, the logarithmic law flattens it
  // (the gate collapses to the rail regardless of thresholds).
  double lin_spread = 0.0;
  double log_spread = 0.0;
  for (const auto law : {devices::PtmResistanceLaw::kLinear,
                         devices::PtmResistanceLaw::kLogarithmic}) {
    double lo = 1e9;
    double hi = 0.0;
    for (const double vimt : {0.35, 0.45, 0.5, 0.55}) {
      auto spec = base;
      spec.dut.ptm = devices::PtmParams{};
      spec.dut.ptm->law = law;
      spec.dut.ptm->v_imt = vimt;
      const auto m = core::characterize_inverter(spec);
      lo = std::min(lo, m.i_max);
      hi = std::max(hi, m.i_max);
    }
    ((law == devices::PtmResistanceLaw::kLinear) ? lin_spread : log_spread) =
        (hi - lo) / lo;
  }

  // Staircase crispness: with a low V_IMT the paper expects several
  // transition pairs (Fig. 3 / Fig. 6); compare the IMT counts per law.
  long lin_steps = 0;
  long log_steps = 0;
  for (const auto law : {devices::PtmResistanceLaw::kLinear,
                         devices::PtmResistanceLaw::kLogarithmic}) {
    auto spec = base;
    spec.dut.ptm = devices::PtmParams{};
    spec.dut.ptm->law = law;
    spec.dut.ptm->v_imt = 0.3;
    spec.dut.ptm->v_mit = 0.25;
    const auto m = core::characterize_inverter(spec);
    ((law == devices::PtmResistanceLaw::kLinear) ? lin_steps : log_steps) =
        m.imt_count;
  }

  std::printf("\nFindings:\n");
  bench::claim("I_MAX at default card (linear vs log)", "(design choice)",
               util::fmt_g(linear_m.i_max * 1e6, 3) + " vs " +
                   util::fmt_g(log_m.i_max * 1e6, 3) + " uA");
  bench::claim("I_MAX sensitivity to V_IMT (min-max spread)",
               "dip exists (Fig. 6)",
               "linear " + util::fmt_g(100.0 * lin_spread, 3) + "% vs log " +
                   util::fmt_g(100.0 * log_spread, 3) + "%");
  bench::claim("staircase steps at low V_IMT (0.3/0.25)",
               "multiple pairs (Fig. 3)",
               "linear " + std::to_string(lin_steps) + " IMT vs log " +
                   std::to_string(log_steps) + " IMT");
  std::printf(
      "  The library defaults to the linear law: its sharp early resistance\n"
      "  recovery stops each metallic excursion near V_MIT, producing the\n"
      "  paper's multi-step staircase at low thresholds. The logarithmic\n"
      "  law lingers near R_MET during recovery, so V_G rides the input\n"
      "  further per excursion and completes in fewer, larger steps.\n");
  return 0;
}
