// Fig. 6: PTM design-space exploration -- I_MAX, di/dt and delay of the
// Soft-FET inverter as V_IMT and V_MIT vary (R_INS, R_MET, T_PTM fixed),
// plus the V_G transients for three V_IMT values.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "core/sweeps.hpp"
#include "devices/ptm.hpp"
#include "measure/waveform.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  using measure::Waveform;
  bench::banner("Fig. 6", "I_MAX / di/dt / delay vs (V_IMT, V_MIT)");

  cells::InverterTestbenchSpec base;
  base.vcc = 1.0;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};
  std::printf("Fixed: R_INS=500k, R_MET=5k, T_PTM=10ps, 30ps input, VCC=1V\n\n");

  const std::vector<double> v_imt{0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55};
  const std::vector<double> v_mit{0.15, 0.2, 0.25, 0.3};
  const auto points = core::sweep_vimt_vmit(base, v_imt, v_mit);

  util::TextTable table({"V_IMT [V]", "V_MIT [V]", "I_MAX [uA]",
                         "di/dt [A/us]", "delay [ps]", "IMT count"});
  for (const auto& p : points) {
    table.add_row({util::fmt_g(p.v_imt), util::fmt_g(p.v_mit),
                   util::fmt_g(p.metrics.i_max * 1e6, 4),
                   util::fmt_g(p.metrics.max_didt / 1e6, 3),
                   util::fmt_g(p.metrics.delay * 1e12, 4),
                   std::to_string(p.metrics.imt_count)});
  }
  bench::print_table(table);

  // V_G transients for three V_IMT values at the paper's V_MIT row.
  std::printf("\nV_G transients (V_MIT = 0.3 V):\n");
  util::TextTable vg_table({"t [ps]", "V_IMT=0.3", "V_IMT=0.4", "V_IMT=0.5"});
  std::vector<Waveform> vg_waves;
  std::vector<long> transitions;
  for (const double imt : {0.3, 0.4, 0.5}) {
    auto spec = base;
    spec.dut.ptm->v_imt = imt;
    spec.dut.ptm->v_mit = std::min(0.3, imt - 0.05);
    const auto m = core::characterize_inverter(spec);
    vg_waves.push_back(Waveform::from_tran(m.tran, "v(dut.g)"));
    transitions.push_back(m.imt_count);
  }
  for (double t = 100e-12; t <= 320e-12; t += 20e-12) {
    vg_table.add_row({util::fmt_g(t * 1e12), util::fmt_g(vg_waves[0].value(t), 3),
                      util::fmt_g(vg_waves[1].value(t), 3),
                      util::fmt_g(vg_waves[2].value(t), 3)});
  }
  bench::print_table(vg_table);

  // Shape checks on the paper's V_MIT = 0.3 row.
  std::vector<const core::DesignSpacePoint*> row;
  for (const auto& p : points) {
    if (p.v_mit == 0.3) row.push_back(&p);
  }
  const auto min_it = std::min_element(
      row.begin(), row.end(), [](const auto* a, const auto* b) {
        return a->metrics.i_max < b->metrics.i_max;
      });
  const bool didt_grows =
      row.back()->metrics.max_didt > row.front()->metrics.max_didt;

  std::printf("\nSummary vs paper:\n");
  bench::claim("I_MAX dip at moderate V_IMT", "around 0.4 V",
               "minimum at V_IMT = " + util::fmt_g((*min_it)->v_imt) + " V");
  bench::claim("low V_IMT makes two+ transition pairs", "two iterations",
               "V_IMT=0.3: " + std::to_string(transitions[0]) +
                   " IMT; V_IMT=0.5: " + std::to_string(transitions[2]));
  bench::claim("max di/dt increases with V_IMT", "increasing",
               didt_grows ? "increasing" : "NOT increasing");
  bench::claim("delay largest where I_MAX lowest", "inverse relation",
               "delay at dip = " +
                   util::fmt_g((*min_it)->metrics.delay * 1e12, 3) + " ps");
  return 0;
}
