// Simulation-service throughput (google-benchmark): NDJSON request
// handling, end-to-end job latency through the admission queue and worker
// pool, and the content-addressed netlist cache's cold-vs-warm split.
//
// Run with --benchmark_format=json to diff service overhead across PRs the
// same way perf_simulator tracks the solver kernels. The interesting
// numbers: control-request handling is pure protocol overhead (no queue),
// "ok" jobs measure queue + worker round-trip cost, and the netlist pair
// isolates what the AST/ordering cache saves on repeated requests.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>

#include "service/server.hpp"

namespace {

using namespace softfet;

/// Response sink that discards lines (the bench measures the service, not
/// the transport) but keeps a count so the optimizer cannot elide calls.
service::Sink null_sink(std::atomic<std::size_t>& lines) {
  return [&lines](const std::string& line) {
    lines.fetch_add(line.size(), std::memory_order_relaxed);
  };
}

[[nodiscard]] std::string job_line(std::uint64_t n, const std::string& type,
                                   const std::string& extra = {}) {
  return "{\"id\":\"b" + std::to_string(n) + "\",\"type\":\"" + type + "\"" +
         extra + "}";
}

/// RC transient netlist as an escaped JSON fragment; `variant` changes the
/// content hash (cold cache) while 0 keeps it stable (warm cache).
[[nodiscard]] std::string netlist_field(std::uint64_t variant) {
  return ",\"netlist\":\"bench rc " + std::to_string(variant) +
         "\\nV1 in 0 1\\nR1 in out 1k\\nC1 out 0 1n\\n.tran 1u 5u\\n.end\"";
}

void BM_ControlRequestPing(benchmark::State& state) {
  service::Server server(service::ServerConfig{});
  std::atomic<std::size_t> lines{0};
  const service::Sink sink = null_sink(lines);
  for (auto _ : state) {
    server.handle_line(R"({"id":"p","type":"ping"})", sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ControlRequestPing);

void BM_TrivialJobRoundTrip(benchmark::State& state) {
  service::ServerConfig config;
  config.workers = static_cast<std::size_t>(state.range(0));
  config.queue_capacity = 4096;
  service::Server server(config);
  server.register_handler("noop",
                          [](const service::Request&, service::JobContext& ctx) {
                            ctx.finish(service::JsonValue::object());
                          });
  std::atomic<std::size_t> lines{0};
  const service::Sink sink = null_sink(lines);
  std::uint64_t n = 0;
  // Admit a batch per iteration step, then drain: measures queue + pool +
  // event emission, amortizing the wait_idle handshake over the batch.
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      server.handle_line(job_line(n++, "noop"), sink);
    }
    server.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_TrivialJobRoundTrip)->Arg(1)->Arg(4);

void BM_NetlistJobColdCache(benchmark::State& state) {
  service::ServerConfig config;
  config.workers = 1;
  config.cache_entries = 4;  // every request a fresh netlist: all misses
  service::Server server(config);
  std::atomic<std::size_t> lines{0};
  const service::Sink sink = null_sink(lines);
  std::uint64_t n = 0;
  for (auto _ : state) {
    server.handle_line(job_line(n, "netlist", netlist_field(n)), sink);
    server.wait_idle();
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cache_hits"] =
      static_cast<double>(server.stats().cache.hits);
}
BENCHMARK(BM_NetlistJobColdCache)->Unit(benchmark::kMillisecond);

void BM_NetlistJobWarmCache(benchmark::State& state) {
  service::ServerConfig config;
  config.workers = 1;
  service::Server server(config);
  std::atomic<std::size_t> lines{0};
  const service::Sink sink = null_sink(lines);
  std::uint64_t n = 0;
  for (auto _ : state) {
    // Identical netlist text every time: one parse + one AMD analysis, then
    // pure hits on the shared AST and ordering memo.
    server.handle_line(job_line(n++, "netlist", netlist_field(0)), sink);
    server.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cache_hits"] =
      static_cast<double>(server.stats().cache.hits);
}
BENCHMARK(BM_NetlistJobWarmCache)->Unit(benchmark::kMillisecond);

// --- Process isolation overhead -------------------------------------------
// The same round trips with jobs shipped to forked sandbox workers over
// the frame pipes. The delta against the thread-mode twins above IS the
// isolation tax (fork amortized away by worker reuse; what remains is two
// frame serializations plus a pipe round trip per event). The acceptance
// bar: healthy-path throughput regresses < 25% vs thread mode.

[[nodiscard]] service::ServerConfig process_config(std::size_t workers) {
  service::ServerConfig config;
  config.workers = workers;
  config.queue_capacity = 4096;
  config.isolation = service::IsolationMode::kProcess;
  return config;
}

void BM_TrivialJobRoundTripProcess(benchmark::State& state) {
  service::Server server(
      process_config(static_cast<std::size_t>(state.range(0))));
  server.register_handler("noop",
                          [](const service::Request&, service::JobContext& ctx) {
                            ctx.finish(service::JsonValue::object());
                          });
  std::atomic<std::size_t> lines{0};
  const service::Sink sink = null_sink(lines);
  std::uint64_t n = 0;
  // Pre-fork the workers outside the timed region so the measurement is
  // the steady-state dispatch cost, not the one-time spawn.
  server.handle_line(job_line(n++, "noop"), sink);
  server.wait_idle();
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      server.handle_line(job_line(n++, "noop"), sink);
    }
    server.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_TrivialJobRoundTripProcess)->Arg(1)->Arg(4);

void BM_NetlistJobWarmProcess(benchmark::State& state) {
  service::Server server(process_config(1));
  std::atomic<std::size_t> lines{0};
  const service::Sink sink = null_sink(lines);
  std::uint64_t n = 0;
  server.handle_line(job_line(n++, "netlist", netlist_field(0)), sink);
  server.wait_idle();
  for (auto _ : state) {
    // Identical netlist text every time, like BM_NetlistJobWarmCache — but
    // the worker process owns the cache, so this also measures chunked
    // waveform frames crossing the pipe.
    server.handle_line(job_line(n++, "netlist", netlist_field(0)), sink);
    server.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetlistJobWarmProcess)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
