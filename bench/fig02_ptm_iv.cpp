// Fig. 2: PTM I-V characteristics with hysteresis.
//
// DC voltage sweep up and back down across a PTM behind a small series
// resistance; the insulator->metal transition fires at V_IMT on the way up
// and the device releases at V_MIT on the way down, tracing the figure's
// hysteresis loop.
#include <cmath>

#include "bench/bench_util.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "sim/analyses.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  bench::banner("Fig. 2", "PTM I-V hysteresis (up/down DC sweep)");

  const devices::PtmParams ptm;
  std::printf(
      "PTM card: R_INS=%s, R_MET=%s, V_IMT=%.2f V, V_MIT=%.2f V\n"
      "Derived current thresholds: I_IMT=%s, I_MIT=%s\n\n",
      util::format_si(ptm.r_ins, 3, "Ohm").c_str(),
      util::format_si(ptm.r_met, 3, "Ohm").c_str(), ptm.v_imt, ptm.v_mit,
      util::format_si(ptm.i_imt(), 3, "A").c_str(),
      util::format_si(ptm.i_mit(), 3, "A").c_str());

  sim::Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  c.add<devices::VSource>("Vs", in, sim::kGroundNode,
                          devices::SourceSpec::dc(0.0));
  c.add<devices::Resistor>("Rs", in, mid, 1e3);
  auto* device = c.add<devices::Ptm>("P1", mid, sim::kGroundNode, ptm);

  std::vector<double> bias;
  for (int i = 0; i <= 50; ++i) bias.push_back(i * 0.012);  // 0 -> 0.6
  for (int i = 50; i >= 0; --i) bias.push_back(i * 0.012);  // 0.6 -> 0
  const auto sweep = sim::dc_sweep(c, "Vs", bias);
  const auto& v_dev = sweep.table.signal("v(mid)");
  const auto& i_dev = sweep.table.signal("i(p1)");
  const auto& phase = sweep.table.signal("s(p1)");

  util::TextTable table(
      {"branch", "V_bias [V]", "V_dev [V]", "I [uA]", "phase"});
  for (std::size_t k = 0; k < bias.size(); k += 5) {
    const bool up = k <= bias.size() / 2;
    table.add_row({up ? "up" : "down", util::fmt_g(bias[k]),
                   util::fmt_g(v_dev[k]), util::fmt_g(i_dev[k] * 1e6),
                   phase[k] > 0.5 ? "metallic" : "insulating"});
  }
  bench::print_table(table);

  // Locate the transitions.
  double v_fire = 0.0;
  double v_release = 0.0;
  for (std::size_t k = 1; k < bias.size() / 2; ++k) {
    if (phase[k] > 0.5 && phase[k - 1] < 0.5) {
      v_fire = v_dev[k - 1];
      break;
    }
  }
  for (std::size_t k = bias.size() / 2; k < bias.size(); ++k) {
    if (phase[k] < 0.5 && phase[k - 1] > 0.5) {
      v_release = v_dev[k - 1];
      break;
    }
  }

  std::printf("\nSummary vs paper:\n");
  bench::claim("abrupt IMT near V_IMT on up-sweep",
               "V_IMT = " + util::fmt_g(ptm.v_imt) + " V",
               "fired at V_dev = " + util::fmt_g(v_fire) + " V");
  bench::claim("MIT release near V_MIT on down-sweep",
               "V_MIT = " + util::fmt_g(ptm.v_mit) + " V",
               "released at V_dev = " + util::fmt_g(v_release) + " V");
  bench::claim("R_OFF/R_ON ratio", "~100x (500k/5k)",
               util::fmt_g(ptm.r_ins / ptm.r_met) + "x");
  bench::claim("hysteresis loop present", "yes",
               (device->imt_count() >= 1 && device->mit_count() >= 1)
                   ? "yes"
                   : "NO");
  return 0;
}
