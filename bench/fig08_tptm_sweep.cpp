// Fig. 8: effect of the PTM intrinsic switching time T_PTM on I_MAX,
// di/dt, delay and the number of phase transitions.
#include "bench/bench_util.hpp"
#include "core/sweeps.hpp"
#include "devices/ptm.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  bench::banner("Fig. 8", "T_PTM sweep: I_MAX, di/dt, delay, transitions");

  cells::InverterTestbenchSpec base;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};

  const auto plain = [&] {
    auto spec = base;
    spec.dut.ptm.reset();
    return core::characterize_inverter(spec);
  }();

  const std::vector<double> t_ptm{1e-12,  2e-12,  5e-12,  10e-12,
                                  20e-12, 50e-12, 100e-12, 200e-12};
  const auto points = core::sweep_tptm(base, t_ptm);

  util::TextTable table({"T_PTM [ps]", "I_MAX [uA]", "vs base", "di/dt [A/us]",
                         "delay [ps]", "IMT count"});
  double best_imax = 1e9;
  double best_tptm = 0.0;
  for (const auto& p : points) {
    if (p.metrics.i_max < best_imax) {
      best_imax = p.metrics.i_max;
      best_tptm = p.t_ptm;
    }
    table.add_row({util::fmt_g(p.t_ptm * 1e12),
                   util::fmt_g(p.metrics.i_max * 1e6, 4),
                   util::fmt_g(100.0 * (1.0 - p.metrics.i_max / plain.i_max), 3) +
                       "%",
                   util::fmt_g(p.metrics.max_didt / 1e6, 3),
                   util::fmt_g(p.metrics.delay * 1e12, 4),
                   std::to_string(p.metrics.imt_count)});
  }
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("small T_PTM: more phase transitions", "multiple",
               std::to_string(points.front().metrics.imt_count) +
                   " at 1 ps vs " +
                   std::to_string(points.back().metrics.imt_count) +
                   " at 200 ps");
  bench::claim("optimized T_PTM minimizes I_MAX", "moderate T_PTM best",
               "minimum at T_PTM = " + util::fmt_g(best_tptm * 1e12) + " ps");
  bench::claim("di/dt decreases with increasing T_PTM", "decreasing trend",
               util::fmt_g(points.front().metrics.max_didt / 1e6, 3) +
                   " -> " +
                   util::fmt_g(points.back().metrics.max_didt / 1e6, 3) +
                   " A/us");
  bench::claim("delay grows at large T_PTM", "complementary to I_MAX",
               util::fmt_g(points.back().metrics.delay * 1e12, 4) +
                   " ps at 200 ps");
  return 0;
}
