// Fig. 1: supply voltage droop in a power delivery network (motivation).
//
// A lumped PDN is hit with current steps of increasing magnitude and edge
// rate; the rail droop decomposes into the IR component and the L*di/dt
// component, reproducing the figure's message that both peak current and
// current slew determine the droop.
#include "bench/bench_util.hpp"
#include "cells/pdn.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/table.hpp"

namespace {

using namespace softfet;
using measure::Waveform;

double droop_for(double i_step, double edge) {
  sim::Circuit c;
  const cells::Pdn pdn =
      cells::add_pdn(c, "pdn", "rail", cells::PdnParams::zhang_islped13());
  c.add<devices::ISource>(
      "Iload", pdn.rail, sim::kGroundNode,
      devices::SourceSpec::pulse(0.0, i_step, 2e-9, edge, edge, 1.0));
  const auto result = sim::run_transient(c, 40e-9);
  return measure::worst_droop(Waveform::from_tran(result, pdn.rail_signal),
                              1.0);
}

}  // namespace

int main() {
  bench::banner("Fig. 1", "supply droop vs load step magnitude and di/dt");

  const cells::PdnParams pdn = cells::PdnParams::zhang_islped13();
  std::printf("PDN: R_pkg=%.0f mOhm, L_pkg=%.0f pH, C_decap=%.0f pF\n\n",
              pdn.r_pkg * 1e3, pdn.l_pkg * 1e12, pdn.c_decap * 1e12);

  util::TextTable table({"I_step [mA]", "edge [ps]", "di/dt [A/us]",
                         "IR drop [mV]", "droop [mV]", "dynamic part [mV]"});
  for (const double i_ma : {5.0, 10.0, 20.0}) {
    for (const double edge_ps : {1000.0, 300.0, 100.0}) {
      const double i = i_ma * 1e-3;
      const double edge = edge_ps * 1e-12;
      const double droop = droop_for(i, edge);
      const double ir = i * pdn.r_pkg;
      table.add_row({util::fmt_g(i_ma), util::fmt_g(edge_ps),
                     util::fmt_g(i / edge / 1e6), util::fmt_g(ir * 1e3),
                     util::fmt_g(droop * 1e3),
                     util::fmt_g((droop - ir) * 1e3)});
    }
  }
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("droop grows with peak current", "yes (Fig. 1)",
               "yes (rows: droop up with I_step)");
  bench::claim("droop grows with di/dt at fixed I", "yes (Fig. 1)",
               "yes (rows: droop up as edge shrinks)");
  return 0;
}
