// Fig. 3: soft (staircase) charging of a capacitor through a PTM.
//
// A voltage ramp drives PTM -> C. The capacitor voltage rises in a
// staircase: slow insulating segments punctuated by fast metallic jumps,
// with the phase transitions counted. An RC reference (constant R equal to
// R_INS) shows what plain exponential charging would look like.
#include "bench/bench_util.hpp"
#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  using measure::Waveform;
  bench::banner("Fig. 3", "soft charging: staircase V_C under a ramp input");

  devices::PtmParams ptm;
  ptm.v_imt = 0.3;  // several staircase steps over a 1 V ramp
  ptm.v_mit = 0.15;
  const double cap = 0.5e-15;
  const double ramp = 60e-12;

  sim::Circuit c;
  const auto in = c.node("in");
  const auto vc = c.node("vc");
  c.add<devices::VSource>("Vin", in, sim::kGroundNode,
                          devices::SourceSpec::ramp(0.0, 1.0, 20e-12, ramp));
  auto* device = c.add<devices::Ptm>("P1", in, vc, ptm);
  c.add<devices::Capacitor>("C1", vc, sim::kGroundNode, cap);
  const auto result = sim::run_transient(c, 1.5e-9);
  const Waveform v_in = Waveform::from_tran(result, "v(in)");
  const Waveform v_c = Waveform::from_tran(result, "v(vc)");
  const Waveform phase = Waveform::from_tran(result, "s(p1)");

  // RC reference with R = R_INS.
  sim::Circuit rc;
  const auto rin = rc.node("in");
  const auto rvc = rc.node("vc");
  rc.add<devices::VSource>("Vin", rin, sim::kGroundNode,
                           devices::SourceSpec::ramp(0.0, 1.0, 20e-12, ramp));
  rc.add<devices::Resistor>("R1", rin, rvc, ptm.r_ins);
  rc.add<devices::Capacitor>("C1", rvc, sim::kGroundNode, cap);
  const auto rc_result = sim::run_transient(rc, 1.5e-9);
  const Waveform v_rc = Waveform::from_tran(rc_result, "v(vc)");

  util::TextTable table({"t [ps]", "V_IN [V]", "V_C soft [V]", "phase",
                         "V_C const-R [V]"});
  for (double t = 0.0; t <= 400e-12; t += 20e-12) {
    table.add_row({util::fmt_g(t * 1e12), util::fmt_g(v_in.value(t)),
                   util::fmt_g(v_c.value(t)),
                   phase.value(t) > 0.5 ? "met" : "ins",
                   util::fmt_g(v_rc.value(t))});
  }
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("staircase charging (multiple IMT/MIT pairs)", ">= 2 pairs",
               std::to_string(device->imt_count()) + " IMT / " +
                   std::to_string(device->mit_count()) + " MIT");
  bench::claim("V_C reaches V_IN eventually", "yes",
               "V_C(1.5ns) = " + util::fmt_g(v_c.value(1.5e-9)) + " V");
  bench::claim("soft path beats constant-R_INS charging", "yes",
               "V_C soft @200ps = " + util::fmt_g(v_c.value(200e-12)) +
                   " vs const-R " + util::fmt_g(v_rc.value(200e-12)));
  return 0;
}
