#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots and fail on regression.

Usage:
    perf_compare.py BASELINE.json CANDIDATE.json [--max-regression 0.25]

Benchmarks are matched by name; names present in only one file are warned
about and skipped, never failed (new benchmarks appear before the baseline
snapshot catches up, old ones retire). A matched benchmark regresses when
its candidate real_time exceeds the baseline by more than --max-regression
(fractional, default 0.25 = 25% slower). Exit status is 1 when any matched
benchmark regresses, 0 otherwise.

When GITHUB_STEP_SUMMARY is set (GitHub Actions), a markdown table of the
comparison plus the skipped-benchmark lists is appended to the job summary.

The threshold is deliberately loose: CI runners are noisy shared machines,
and the point is to catch order-of-magnitude mistakes (a cache accidentally
disabled, a map lookup back on the hot path), not 5% wobble.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    out: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev from --benchmark_repetitions)
        # would double-count; keep only plain iteration rows.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional real_time increase (default 0.25)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    matched = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if not matched:
        print("error: no benchmark names in common", file=sys.stderr)
        return 1

    regressions = []
    rows = []
    print(f"{'benchmark':46s} {'baseline':>12s} {'candidate':>12s} {'ratio':>8s}")
    for name in matched:
        b, c = base[name], cand[name]
        if b.get("time_unit") != c.get("time_unit"):
            print(f"error: {name}: time_unit changed", file=sys.stderr)
            return 1
        ratio = c["real_time"] / b["real_time"] if b["real_time"] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.max_regression:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        unit = b.get("time_unit", "ns")
        rows.append((name, b["real_time"], c["real_time"], ratio, unit, bool(flag)))
        print(
            f"{name:46s} {b['real_time']:12.1f} {c['real_time']:12.1f} "
            f"{ratio:7.2f}x{flag} ({unit})"
        )

    # A benchmark present in only one snapshot cannot be compared: warn and
    # skip rather than fail, so a PR that adds benchmarks does not have to
    # regenerate the committed baseline in the same change.
    for name in only_base:
        print(f"warning: skipping {name}: only in baseline (retired?)")
    for name in only_cand:
        print(
            f"warning: skipping {name}: not in baseline (new benchmark; "
            "will be compared once a baseline snapshot includes it)"
        )

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("### Benchmark comparison\n\n")
            handle.write("| benchmark | baseline | candidate | ratio |\n")
            handle.write("| --- | ---: | ---: | ---: |\n")
            for name, bt, ct, ratio, unit, bad in rows:
                mark = " :warning: **REGRESSION**" if bad else ""
                handle.write(
                    f"| `{name}` | {bt:.1f} {unit} | {ct:.1f} {unit} | "
                    f"{ratio:.2f}x{mark} |\n"
                )
            if only_cand:
                handle.write(
                    "\n**Skipped (new, not in baseline yet):** "
                    + ", ".join(f"`{n}`" for n in only_cand)
                    + "\n"
                )
            if only_base:
                handle.write(
                    "\n**Skipped (only in baseline, retired?):** "
                    + ", ".join(f"`{n}`" for n in only_base)
                    + "\n"
                )

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) slower than "
            f"{1.0 + args.max_regression:.2f}x baseline "
            f"(worst: {worst[0]} at {worst[1]:.2f}x)",
            file=sys.stderr,
        )
        return 1

    print(f"\nOK: {len(matched)} benchmarks within {1.0 + args.max_regression:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
