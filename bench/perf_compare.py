#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots and fail on regression.

Usage:
    perf_compare.py BASELINE.json CANDIDATE.json [--max-regression 0.25]

Benchmarks are matched by name; names present in only one file are listed
but never fail the run (new benchmarks appear, old ones retire). A matched
benchmark regresses when its candidate real_time exceeds the baseline by
more than --max-regression (fractional, default 0.25 = 25% slower). Exit
status is 1 when any matched benchmark regresses, 0 otherwise.

The threshold is deliberately loose: CI runners are noisy shared machines,
and the point is to catch order-of-magnitude mistakes (a cache accidentally
disabled, a map lookup back on the hot path), not 5% wobble.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    out: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev from --benchmark_repetitions)
        # would double-count; keep only plain iteration rows.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional real_time increase (default 0.25)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    matched = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if not matched:
        print("error: no benchmark names in common", file=sys.stderr)
        return 1

    regressions = []
    print(f"{'benchmark':46s} {'baseline':>12s} {'candidate':>12s} {'ratio':>8s}")
    for name in matched:
        b, c = base[name], cand[name]
        if b.get("time_unit") != c.get("time_unit"):
            print(f"error: {name}: time_unit changed", file=sys.stderr)
            return 1
        ratio = c["real_time"] / b["real_time"] if b["real_time"] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.max_regression:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        unit = b.get("time_unit", "ns")
        print(
            f"{name:46s} {b['real_time']:12.1f} {c['real_time']:12.1f} "
            f"{ratio:7.2f}x{flag} ({unit})"
        )

    for name in only_base:
        print(f"note: {name} only in baseline (retired?)")
    for name in only_cand:
        print(f"note: {name} only in candidate (new)")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) slower than "
            f"{1.0 + args.max_regression:.2f}x baseline "
            f"(worst: {worst[0]} at {worst[1]:.2f}x)",
            file=sys.stderr,
        )
        return 1

    print(f"\nOK: {len(matched)} benchmarks within {1.0 + args.max_regression:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
