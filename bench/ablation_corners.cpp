// Process-corner ablation: does the Soft-FET benefit survive CMOS process
// corners? The PTM is a separate (BEOL) material, so its card is held fixed
// while the transistors move through TT/SS/FF/SF/FS.
#include "bench/bench_util.hpp"
#include "core/characterize.hpp"
#include "devices/ptm.hpp"
#include "devices/tech40.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  namespace t40 = devices::tech40;
  bench::banner("Ablation", "Soft-FET benefit across CMOS process corners");

  util::TextTable table({"corner", "I_MAX base [uA]", "I_MAX soft [uA]",
                         "reduction [%]", "delay base [ps]",
                         "delay soft [ps]", "penalty [x]"});
  double min_reduction = 1e9;
  double max_reduction = -1e9;
  for (const auto corner : {t40::Corner::kTT, t40::Corner::kSS,
                            t40::Corner::kFF, t40::Corner::kSF,
                            t40::Corner::kFS}) {
    cells::InverterTestbenchSpec spec;
    spec.input_transition = 30e-12;
    spec.input_rising = false;
    spec.dut.nmos_model = t40::with_corner(t40::nmos(), corner);
    spec.dut.pmos_model = t40::with_corner(t40::pmos(), corner);

    const auto base = core::characterize_inverter(spec);
    auto soft_spec = spec;
    soft_spec.dut.ptm = devices::PtmParams{};
    const auto soft = core::characterize_inverter(soft_spec);

    const double reduction = 100.0 * (1.0 - soft.i_max / base.i_max);
    min_reduction = std::min(min_reduction, reduction);
    max_reduction = std::max(max_reduction, reduction);
    table.add_row({t40::corner_name(corner),
                   util::fmt_g(base.i_max * 1e6, 4),
                   util::fmt_g(soft.i_max * 1e6, 4),
                   util::fmt_g(reduction, 3),
                   util::fmt_g(base.delay * 1e12, 4),
                   util::fmt_g(soft.delay * 1e12, 4),
                   util::fmt_g(soft.delay / base.delay, 3)});
  }
  bench::print_table(table);

  std::printf("\nFindings:\n");
  bench::claim("I_MAX reduction across all corners", "(robustness check)",
               util::fmt_g(min_reduction, 3) + "% - " +
                   util::fmt_g(max_reduction, 3) + "%");
  std::printf(
      "  The PTM thresholds are material constants, so the Soft-FET benefit\n"
      "  tracks the transistor drive: fast corners switch harder and gain\n"
      "  more from softening; slow corners start gentler and gain less.\n");
  return 0;
}
