// Section IV.E ablation: the paper recommends an input-slew to T_PTM ratio
// of roughly 1.5-3 for the best soft-switching benefit. This bench sweeps
// the 2-D (slew, T_PTM) grid and reports where the I_MAX reduction peaks.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "core/sweeps.hpp"
#include "devices/ptm.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  bench::banner("IV.E ablation", "slew / T_PTM ratio recommendation");

  cells::InverterTestbenchSpec base;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};

  const std::vector<double> slews{10e-12, 20e-12, 30e-12, 60e-12, 120e-12};
  const std::vector<double> t_ptms{5e-12, 10e-12, 20e-12, 40e-12};
  const auto points = core::sweep_slew_tptm_ratio(base, slews, t_ptms);

  util::TextTable table({"slew [ps]", "T_PTM [ps]", "ratio",
                         "I_MAX reduction [%]", "delay penalty [x]"});
  for (const auto& p : points) {
    table.add_row({util::fmt_g(p.slew * 1e12), util::fmt_g(p.t_ptm * 1e12),
                   util::fmt_g(p.ratio, 3),
                   util::fmt_g(p.imax_reduction_pct, 3),
                   util::fmt_g(p.delay_penalty, 3)});
  }
  bench::print_table(table);

  // Where does the benefit concentrate?
  auto sorted = points;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.imax_reduction_pct > b.imax_reduction_pct;
  });
  double ratio_lo = 1e30;
  double ratio_hi = 0.0;
  const std::size_t top = std::min<std::size_t>(5, sorted.size());
  for (std::size_t i = 0; i < top; ++i) {
    ratio_lo = std::min(ratio_lo, sorted[i].ratio);
    ratio_hi = std::max(ratio_hi, sorted[i].ratio);
  }

  std::printf("\nSummary vs paper:\n");
  bench::claim("best-benefit ratio window", "~1.5-3 (VCC/V_IMT dependent)",
               "top-5 points span ratio " + util::fmt_g(ratio_lo, 3) + " - " +
                   util::fmt_g(ratio_hi, 3));
  bench::claim("benefit collapses at large ratio (slow input)", "yes",
               util::fmt_g(points.back().imax_reduction_pct, 3) +
                   "% at ratio " + util::fmt_g(points.back().ratio, 3));
  return 0;
}
