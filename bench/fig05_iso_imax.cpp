// Fig. 5: comparison of the Soft-FET with CMOS peak-current-reduction
// variants (HVT, gate series R, stacked devices) under iso-I_MAX matching
// at VCC = 1 V, swept across the supply range.
#include "bench/bench_util.hpp"
#include "core/iso_imax.hpp"
#include "devices/ptm.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  bench::banner("Fig. 5",
                "iso-I_MAX study: delay across VCC for all variants");

  core::IsoImaxSpec spec;
  spec.base.input_transition = 30e-12;
  spec.base.input_rising = false;
  spec.base.dut.ptm = devices::PtmParams{};
  spec.vcc_sweep = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  const auto result = core::run_iso_imax_study(spec);

  std::printf("Calibration at VCC = %.1f V (target I_MAX = %s):\n",
              spec.calibration_vcc,
              util::format_si(result.target_imax, 3, "A").c_str());
  std::printf("  HVT:      delta-VT = +%.0f mV\n", result.hvt_delta_vt * 1e3);
  std::printf("  series-R: R_gate   = %s\n",
              util::format_si(result.series_r, 3, "Ohm").c_str());
  std::printf("  stacked:  2-stack width multiple = %.2f\n\n",
              result.stack_width_mult);

  const char* names[] = {"softfet", "baseline", "hvt", "series-r", "stacked"};

  std::printf("I_MAX [uA] vs VCC:\n");
  util::TextTable imax_table(
      {"VCC [V]", "Soft-FET", "baseline", "HVT", "series-R", "stacked"});
  for (std::size_t i = 0; i < spec.vcc_sweep.size(); ++i) {
    std::vector<std::string> row{util::fmt_g(spec.vcc_sweep[i])};
    for (const char* name : names) {
      row.push_back(util::fmt_g(result.curves.at(name)[i].i_max * 1e6, 3));
    }
    imax_table.add_row(std::move(row));
  }
  bench::print_table(imax_table);

  std::printf("\nDelay [ps] vs VCC (50%% in -> 20/80%% out):\n");
  util::TextTable delay_table(
      {"VCC [V]", "Soft-FET", "baseline", "HVT", "series-R", "stacked"});
  for (std::size_t i = 0; i < spec.vcc_sweep.size(); ++i) {
    std::vector<std::string> row{util::fmt_g(spec.vcc_sweep[i])};
    for (const char* name : names) {
      row.push_back(util::fmt_g(result.curves.at(name)[i].delay * 1e12, 4));
    }
    delay_table.add_row(std::move(row));
  }
  bench::print_table(delay_table);

  const auto& soft = result.curves.at("softfet");
  const auto& hvt = result.curves.at("hvt");
  const auto& series = result.curves.at("series-r");
  const double soft_blow = soft.front().delay / soft.back().delay;
  const double hvt_blow = hvt.front().delay / hvt.back().delay;

  std::printf("\nSummary vs paper:\n");
  bench::claim("all variants match I_MAX at 1 V", "iso-I_MAX",
               "within calibration tolerance (see table)");
  bench::claim("HVT comparable delay at 1 V",
               "comparable",
               util::fmt_g(hvt.back().delay * 1e12, 3) + " vs Soft-FET " +
                   util::fmt_g(soft.back().delay * 1e12, 3) + " ps");
  bench::claim("HVT delay explodes at low VCC", "significantly larger",
               util::fmt_g(hvt_blow, 3) + "x growth vs Soft-FET " +
                   util::fmt_g(soft_blow, 3) + "x");
  bench::claim("series-R slower than Soft-FET at 1 V", "longer delay",
               util::fmt_g(series.back().delay * 1e12, 3) + " vs " +
                   util::fmt_g(soft.back().delay * 1e12, 3) + " ps");
  std::printf(
      "  NOTE: in this reproduction the series-R and stacked variants stay\n"
      "  faster than the Soft-FET at the lowest supplies (the fixed V_IMT\n"
      "  consumes most of a 0.5 V swing); the HVT blow-up -- the figure's\n"
      "  central claim -- reproduces strongly. See EXPERIMENTS.md.\n");
  return 0;
}
