// Mesh PDN droop at scale (Fig. 1 / Fig. 10 message, spatially resolved).
//
// A rows x cols mesh PDN built from the paper's lumped totals is hit by an
// aggressor load at an off-center tile. The hard current edge reproduces
// the Fig. 1 droop; the staircase edge stands in for a Soft-FET-charged
// gate (the Fig. 3 waveform) spreading the same charge over several soft
// sub-steps. Per-tile droop locates the worst spot on the die and shows
// the droop decaying away from the aggressor. The largest grid is also
// solved under the preconditioned-iterative policy to exercise the Krylov
// path against the direct result.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "cells/pdn.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace softfet;
using measure::Waveform;

constexpr double kIStep = 20e-3;  // aggressor magnitude [A]
constexpr double kEdge = 100e-12;
constexpr double kT0 = 1e-9;
constexpr double kTstop = 6e-9;

struct GridRun {
  std::vector<double> tile_droop;  // row-major [row][col]
  double worst = 0.0;
  std::size_t worst_row = 0;
  std::size_t worst_col = 0;
  std::size_t unknowns = 0;
  double wall_ms = 0.0;
  SolverDiagnostics diag;
};

/// Hard edge: the full step in one `kEdge` riser. Soft: the same charge in
/// four staircase sub-steps 500 ps apart (the Soft-FET gate waveform).
devices::SourceSpec load_edge(bool soft) {
  if (!soft) return devices::SourceSpec::pulse(0.0, kIStep, kT0, kEdge, kEdge, 1.0);
  std::vector<numeric::PwlPoint> pts{{0.0, 0.0}, {kT0, 0.0}};
  for (int k = 1; k <= 4; ++k) {
    const double t = kT0 + (k - 1) * 500e-12;
    pts.push_back({t + kEdge, kIStep * k / 4.0});
    if (k < 4) pts.push_back({t + 500e-12, kIStep * k / 4.0});
  }
  return devices::SourceSpec::pwl(std::move(pts));
}

GridRun run_grid(std::size_t n, bool soft, numeric::SolverPolicy policy) {
  sim::Circuit c;
  const auto params =
      cells::PdnGridParams::from_lumped(cells::PdnParams::zhang_islped13(),
                                        n, n);
  const cells::PdnGrid grid = cells::make_pdn_grid(c, "grid", params);
  c.add<devices::ISource>("Iload", grid.tile(n / 4, n / 4), sim::kGroundNode,
                          load_edge(soft));

  sim::SimOptions options;
  options.solver_policy = policy;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sim::run_transient(c, kTstop, options);
  const auto stop = std::chrono::steady_clock::now();

  GridRun run;
  run.unknowns = c.unknown_count();
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.diag = result.diagnostics;
  run.tile_droop.reserve(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t col = 0; col < n; ++col) {
      const double droop = measure::worst_droop(
          Waveform::from_tran(result, grid.tile_signal(r, col)), params.vcc);
      run.tile_droop.push_back(droop);
      if (droop > run.worst) {
        run.worst = droop;
        run.worst_row = r;
        run.worst_col = col;
      }
    }
  }
  return run;
}

/// Coarse ASCII droop map, downsampled to at most 16x16 blocks and shaded
/// over the min..max droop range so the spatial gradient is visible even
/// when the shared package droop dominates the absolute numbers.
void print_map(const GridRun& run, std::size_t n) {
  static const char kShades[] = " .:-=+*#%@";
  const std::size_t block = n <= 16 ? 1 : n / 16;
  const double lo =
      *std::min_element(run.tile_droop.begin(), run.tile_droop.end());
  const double span = run.worst - lo;
  std::printf("  droop map (block max, ' ' = %s, '@' = %s):\n",
              util::format_si(lo, 3, "V").c_str(),
              util::format_si(run.worst, 3, "V").c_str());
  for (std::size_t r = 0; r < n; r += block) {
    std::printf("    ");
    for (std::size_t c = 0; c < n; c += block) {
      double peak = 0.0;
      for (std::size_t rr = r; rr < std::min(r + block, n); ++rr) {
        for (std::size_t cc = c; cc < std::min(c + block, n); ++cc) {
          peak = std::max(peak, run.tile_droop[rr * n + cc]);
        }
      }
      const int shade =
          span > 0.0 ? static_cast<int>((peak - lo) / span * 9.0) : 0;
      std::putchar(kShades[std::min(shade, 9)]);
    }
    std::putchar('\n');
  }
}

void print_solver_line(const char* tag, const GridRun& run) {
  std::printf("  %-18s %zu unknowns, %zu analyses / %zu refactors, fill "
              "%sx%s, %.0f ms",
              tag, run.unknowns, run.diag.symbolic_analyses,
              run.diag.refactorizations,
              util::fmt_g(run.diag.fill_ratio, 3).c_str(),
              run.diag.reordered ? " (amd)" : "", run.wall_ms);
  if (run.diag.krylov_solves > 0 || run.diag.krylov_fallbacks > 0) {
    std::printf(", krylov %zu solves / %zu iters / %zu fallbacks",
                run.diag.krylov_solves, run.diag.krylov_iterations,
                run.diag.krylov_fallbacks);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Mesh PDN", "grid droop vs edge rate, worst-droop location");
  std::printf("Aggressor: %s step at tile (n/4, n/4), hard %s edge vs "
              "4-step staircase\n\n",
              util::format_si(kIStep, 3, "A").c_str(),
              util::format_si(kEdge, 3, "s").c_str());

  util::TextTable table({"grid", "edge", "worst droop [mV]", "at tile",
                         "corner droop [mV]"});
  for (const std::size_t n : {16u, 32u, 64u}) {
    GridRun hard;
    GridRun soft;
    for (const bool is_soft : {false, true}) {
      GridRun run = run_grid(n, is_soft, numeric::SolverPolicy::kDirect);
      const std::string grid_name =
          std::to_string(n) + "x" + std::to_string(n);
      table.add_row({grid_name, is_soft ? "staircase" : "hard",
                     util::fmt_g(run.worst * 1e3, 3),
                     "(" + std::to_string(run.worst_row) + "," +
                         std::to_string(run.worst_col) + ")",
                     util::fmt_g(run.tile_droop[n * n - 1] * 1e3, 3)});
      (is_soft ? soft : hard) = std::move(run);
    }
    std::printf("%zux%zu hard edge:\n", n, n);
    print_map(hard, n);
    print_solver_line("direct/hard:", hard);
    print_solver_line("direct/soft:", soft);

    if (n == 64) {
      // Same grid under the preconditioned-iterative policy: the stale-LU
      // BiCGSTAB path must land on the direct answer within tolerance.
      const GridRun krylov =
          run_grid(n, true, numeric::SolverPolicy::kIterative);
      print_solver_line("iterative/soft:", krylov);
      bench::claim("iterative matches direct droop",
                   util::fmt_g(soft.worst * 1e3, 4) + " mV",
                   util::fmt_g(krylov.worst * 1e3, 4) + " mV");
    }
    std::printf("\n");
  }
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("hard edge droops worse than staircase", "Fig. 3/10 message",
               "see rows (hard > staircase at every size)");
  bench::claim("worst droop localizes at the aggressor", "spatial droop",
               "map peak at (n/4, n/4)");
  return 0;
}
