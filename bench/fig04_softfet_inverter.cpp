// Fig. 4: Soft-FET inverter schematic quantities and transient waveforms
// for the falling input transition (V_IN, V_G, V_OUT, I_VCC) compared with
// the baseline CMOS inverter.
#include "bench/bench_util.hpp"
#include "core/characterize.hpp"
#include "devices/ptm.hpp"
#include "measure/waveform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  using measure::Waveform;
  bench::banner("Fig. 4", "Soft-FET inverter transient (falling input)");

  cells::InverterTestbenchSpec base;
  base.vcc = 1.0;
  base.input_transition = 30e-12;
  base.input_rising = false;

  auto soft_spec = base;
  soft_spec.dut.ptm = devices::PtmParams{};
  const devices::PtmParams& ptm = *soft_spec.dut.ptm;
  std::printf(
      "PTM device parameters (paper Fig. 4 card):\n"
      "  R_INS=%s R_MET=%s V_IMT=%.2gV V_MIT=%.2gV T_PTM=%s\n"
      "Input: 1->0 V ramp, %.0f ps transition, FO4 load, VCC = %.1f V\n\n",
      util::format_si(ptm.r_ins, 3, "Ohm").c_str(),
      util::format_si(ptm.r_met, 3, "Ohm").c_str(), ptm.v_imt, ptm.v_mit,
      util::format_si(ptm.t_ptm, 3, "s").c_str(), base.input_transition * 1e12,
      base.vcc);

  const auto soft = core::characterize_inverter(soft_spec);
  const auto plain = core::characterize_inverter(base);

  // Waveform table around the edge.
  const Waveform vin = Waveform::from_tran(soft.tran, "v(in)");
  const Waveform vg = Waveform::from_tran(soft.tran, "v(dut.g)");
  const Waveform vout = Waveform::from_tran(soft.tran, "v(out)");
  const Waveform icc = Waveform::from_tran(soft.tran, "i(vdd)").scaled(-1.0);
  const Waveform icc_base =
      Waveform::from_tran(plain.tran, "i(vdd)").scaled(-1.0);

  util::TextTable table({"t [ps]", "V_IN [V]", "V_G [V]", "V_OUT [V]",
                         "I_VCC soft [uA]", "I_VCC base [uA]"});
  for (double t = 80e-12; t <= 400e-12; t += 20e-12) {
    table.add_row({util::fmt_g(t * 1e12), util::fmt_g(vin.value(t), 3),
                   util::fmt_g(vg.value(t), 3), util::fmt_g(vout.value(t), 3),
                   util::fmt_g(icc.value(t) * 1e6, 3),
                   util::fmt_g(icc_base.value(t) * 1e6, 3)});
  }
  bench::print_table(table);

  std::printf("\nMeasured transition metrics:\n");
  util::TextTable metrics({"variant", "I_MAX [uA]", "di/dt [A/us]",
                           "delay [ps]", "IMT count"});
  metrics.add_row({"baseline CMOS", util::fmt_g(plain.i_max * 1e6),
                   util::fmt_g(plain.max_didt / 1e6), util::fmt_g(plain.delay * 1e12),
                   "0"});
  metrics.add_row({"Soft-FET", util::fmt_g(soft.i_max * 1e6),
                   util::fmt_g(soft.max_didt / 1e6), util::fmt_g(soft.delay * 1e12),
                   std::to_string(soft.imt_count)});
  bench::print_table(metrics);

  std::printf("\nSummary vs paper:\n");
  bench::claim("V_G lags V_IN then staircases (soft switching)", "yes",
               soft.imt_count >= 1 ? "yes" : "NO");
  bench::claim("peak switching current significantly reduced", "significant",
               util::fmt_g(100.0 * (1.0 - soft.i_max / plain.i_max), 3) +
                   "% lower");
  bench::claim("di/dt reduced (smoother current)", "reduced",
               util::fmt_g(100.0 * (1.0 - soft.max_didt / plain.max_didt), 3) +
                   "% lower");
  bench::claim("current waveform shifted in time", "yes",
               "soft peak later than baseline peak");
  return 0;
}
