// Paper contribution 3 (Section IV): detailed PTM device parameter
// variation study -- local sensitivities of I_MAX / di/dt / delay to each
// PTM parameter, plus a fabrication-variability Monte Carlo showing how
// robust the Soft-FET benefit is to device spread ("must be appropriately
// tuned with careful device fabrication").
#include "bench/bench_util.hpp"
#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  bench::banner("Section IV", "PTM parameter sensitivity and variability");

  cells::InverterTestbenchSpec base;
  base.input_transition = 30e-12;
  base.input_rising = false;
  base.dut.ptm = devices::PtmParams{};

  std::printf("Local sensitivities (+-10%% central differences), in\n"
              "percent-metric per percent-parameter:\n\n");
  const auto rows = core::ptm_sensitivity(base, 0.10);
  util::TextTable table({"parameter", "nominal", "dI_MAX/dp", "d(di/dt)/dp",
                         "d(delay)/dp"});
  std::string most_sensitive;
  double worst = 0.0;
  for (const auto& row : rows) {
    table.add_row({row.parameter, util::format_si(row.nominal, 3),
                   util::fmt_g(row.imax_sensitivity, 3),
                   util::fmt_g(row.didt_sensitivity, 3),
                   util::fmt_g(row.delay_sensitivity, 3)});
    if (std::abs(row.imax_sensitivity) > worst) {
      worst = std::abs(row.imax_sensitivity);
      most_sensitive = row.parameter;
    }
  }
  bench::print_table(table);

  std::printf("\nFabrication-variability Monte Carlo (100 samples; sigma:\n"
              "thresholds 5%%, resistances 15%%, T_PTM 10%%):\n\n");
  const auto mc = core::ptm_monte_carlo(base);
  util::TextTable mct({"metric", "mean", "std", "worst"});
  mct.add_row({"I_MAX [uA]", util::fmt_g(mc.imax_mean * 1e6, 4),
               util::fmt_g(mc.imax_std * 1e6, 3),
               util::fmt_g(mc.imax_worst * 1e6, 4)});
  mct.add_row({"delay [ps]", util::fmt_g(mc.delay_mean * 1e12, 4),
               util::fmt_g(mc.delay_std * 1e12, 3),
               util::fmt_g(mc.delay_worst * 1e12, 4)});
  bench::print_table(mct);

  std::printf("\nSummary vs paper:\n");
  bench::claim("PTM parameters strongly shape Soft-FET behaviour",
               "crucial role (Sec. IV)",
               "most I_MAX-sensitive: " + most_sensitive);
  bench::claim("benefit robust under fabrication spread",
               "careful fabrication needed",
               util::fmt_g(100.0 * mc.fraction_below_baseline, 3) +
                   "% of samples still beat baseline I_MAX");
  return 0;
}
