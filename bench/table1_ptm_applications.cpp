// Table 1: qualitative comparison of PTM applications. The two simulatable
// rows are reproduced quantitatively with this library's models:
//  - Hyper-FET (logic): PTM at the MOSFET source -> steep subthreshold
//    swing and better Ion/Ioff;
//  - selector switch (memory): PTM in series with each crossbar cell ->
//    suppressed sneak-path current.
// The MTJ and PCM columns are literature context (no transport model here);
// they are summarized textually.
#include <cmath>

#include "bench/bench_util.hpp"
#include "cells/hyperfet.hpp"
#include "devices/tech40.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  namespace t40 = devices::tech40;
  bench::banner("Table 1", "PTM applications: Hyper-FET and selector switch");

  // --- Hyper-FET row ----------------------------------------------------
  devices::PtmParams hyper_ptm;
  hyper_ptm.r_ins = 2.5e9;  // GOhm-class: starves subthreshold leakage
  hyper_ptm.r_met = 200.0;
  hyper_ptm.v_imt = 0.2;
  hyper_ptm.v_mit = 5e-5;  // I_MIT = 0.25 uA holding current

  const auto dims = t40::min_nmos_dims();
  const auto plain = cells::mosfet_transfer_curve(t40::nmos(), dims, 1.0, 1.0, 41);
  const auto hyper =
      cells::hyperfet_transfer_curve(t40::nmos(), dims, hyper_ptm, 1.0, 1.0, 41);

  util::TextTable id_table({"Vgs [V]", "MOSFET Id [A]", "Hyper-FET Id [A]"});
  for (std::size_t i = 0; i < plain.vgs.size(); i += 4) {
    id_table.add_row({util::fmt_g(plain.vgs[i], 3),
                      util::format_si(plain.id[i], 3),
                      util::format_si(hyper.id[i], 3)});
  }
  bench::print_table(id_table);

  const double plain_ratio = plain.id.back() / plain.id.front();
  const double hyper_ratio = hyper.id.back() / hyper.id.front();
  double steepest = 1e9;  // mV/dec
  for (std::size_t i = 1; i < hyper.id.size(); ++i) {
    const double decades = std::log10(hyper.id[i] / hyper.id[i - 1]);
    if (decades > 0.05) {
      steepest = std::min(
          steepest, (hyper.vgs[i] - hyper.vgs[i - 1]) * 1e3 / decades);
    }
  }

  // --- Selector switch row ----------------------------------------------
  const devices::PtmParams selector{500e3, 5e3, 0.4, 0.3, 10e-12};
  const auto with = cells::crossbar_read(6, 10e3, 1e6, true, selector, 1.0);
  const auto without = cells::crossbar_read(6, 10e3, 1e6, false, selector, 1.0);
  const double margin_with = with.selected_current / with.sneak_current;
  const double margin_without =
      without.selected_current / without.sneak_current;

  std::printf("\n6x6 crossbar read (LRS=10k, HRS=1M, half-float bias):\n");
  util::TextTable xbar({"configuration", "I(read LRS) [uA]",
                        "I(read HRS) [uA]", "read margin"});
  xbar.add_row({"1R (no selector)",
                util::fmt_g(without.selected_current * 1e6, 3),
                util::fmt_g(without.sneak_current * 1e6, 3),
                util::fmt_g(margin_without, 3)});
  xbar.add_row({"PTM selector + R",
                util::fmt_g(with.selected_current * 1e6, 3),
                util::fmt_g(with.sneak_current * 1e6, 3),
                util::fmt_g(margin_with, 3)});
  bench::print_table(xbar);

  std::printf("\nSummary vs paper (Table 1 rows):\n");
  bench::claim("Hyper-FET: steep sub-threshold swing", "< 60 mV/dec locally",
               util::fmt_g(steepest, 3) + " mV/dec at the transition");
  bench::claim("Hyper-FET: improved Ion/Ioff", "improved",
               util::fmt_g(hyper_ratio / plain_ratio, 3) + "x better ratio");
  bench::claim("selector: reduced sneak path current", "reduced",
               util::fmt_g(margin_with / margin_without, 3) +
                   "x better read margin");
  bench::claim("Soft-FET (this paper): DC unperturbed, transient softened",
               "gate-side PTM", "see fig04 bench");
  std::printf(
      "  (MTJ tunnel-junction and PCM rows are literature context: bandgap-\n"
      "   and crystalline/amorphous-resistivity mechanisms; not modelled.)\n");
  return 0;
}
