// Compact-model ablation: is the Soft-FET benefit an artifact of the EKV
// equations? Re-run the headline inverter comparison with the smoothed
// Level-1 (Shichman-Hodges) model — same card, different physics — and
// compare the reductions.
#include "bench/bench_util.hpp"
#include "core/characterize.hpp"
#include "devices/ptm.hpp"
#include "devices/tech40.hpp"
#include "util/table.hpp"

int main() {
  using namespace softfet;
  namespace t40 = devices::tech40;
  bench::banner("Ablation", "compact model: EKV vs smoothed Level-1");

  util::TextTable table({"model", "I_MAX base [uA]", "I_MAX soft [uA]",
                         "reduction [%]", "di/dt red. [%]", "delay [x]",
                         "IMT"});
  double reductions[2] = {0.0, 0.0};
  int row = 0;
  for (const auto level :
       {devices::MosfetLevel::kEkv, devices::MosfetLevel::kSquareLaw}) {
    cells::InverterTestbenchSpec spec;
    spec.input_transition = 30e-12;
    spec.input_rising = false;
    spec.dut.nmos_model.level = level;
    spec.dut.pmos_model.level = level;

    const auto base = core::characterize_inverter(spec);
    auto soft_spec = spec;
    soft_spec.dut.ptm = devices::PtmParams{};
    const auto soft = core::characterize_inverter(soft_spec);

    reductions[row++] = 100.0 * (1.0 - soft.i_max / base.i_max);
    table.add_row(
        {level == devices::MosfetLevel::kEkv ? "EKV" : "Level-1",
         util::fmt_g(base.i_max * 1e6, 4), util::fmt_g(soft.i_max * 1e6, 4),
         util::fmt_g(100.0 * (1.0 - soft.i_max / base.i_max), 3),
         util::fmt_g(100.0 * (1.0 - soft.max_didt / base.max_didt), 3),
         util::fmt_g(soft.delay / base.delay, 3),
         std::to_string(soft.imt_count)});
  }
  bench::print_table(table);

  std::printf("\nFindings:\n");
  bench::claim("I_MAX reduction robust to the compact model",
               "(robustness check)",
               util::fmt_g(reductions[0], 3) + "% (EKV) vs " +
                   util::fmt_g(reductions[1], 3) + "% (Level-1)");
  std::printf(
      "  The soft-switching mechanism lives in the PTM/gate-capacitance\n"
      "  interaction, not in the transistor equations; any model with a\n"
      "  threshold and saturation reproduces it.\n");
  return 0;
}
