// Fig. 10: Soft-FET power gate -- wake-up inrush current and shared-rail
// droop, baseline gate drive vs PTM-softened gate drive.
#include "bench/bench_util.hpp"
#include "core/case_studies.hpp"
#include "measure/waveform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace softfet;
  using measure::Waveform;
  bench::banner("Fig. 10", "power-gate wake-up: inrush and rail droop");

  cells::PowerGateSpec spec;
  std::printf(
      "PDN (from [19], lumped): R=%0.f mOhm, L=%.0f pH, C_decap=%.0f pF\n"
      "Header: %.0f um PMOS; domain: %.0f pF; neighbour draw: %.0f mA\n"
      "Header PTM card: R_INS=%s R_MET=%s V_IMT=%.1f V_MIT=%.1f\n\n",
      spec.pdn.r_pkg * 1e3, spec.pdn.l_pkg * 1e12, spec.pdn.c_decap * 1e12,
      spec.header_m * 0.24, spec.domain_cap * 1e12,
      spec.neighbour_current * 1e3,
      util::format_si(cells::PowerGateSpec::default_header_ptm().r_ins, 3).c_str(),
      util::format_si(cells::PowerGateSpec::default_header_ptm().r_met, 3).c_str(),
      cells::PowerGateSpec::default_header_ptm().v_imt,
      cells::PowerGateSpec::default_header_ptm().v_mit);

  const auto study = core::run_power_gate_study(spec);

  // Waveform table of the wake event.
  const Waveform rail_b =
      Waveform::from_tran(study.baseline.tran, "v(vrail)");
  const Waveform rail_s = Waveform::from_tran(study.soft.tran, "v(vrail)");
  const Waveform vvdd_b = Waveform::from_tran(study.baseline.tran, "v(vvdd)");
  const Waveform vvdd_s = Waveform::from_tran(study.soft.tran, "v(vvdd)");
  const Waveform ih_b =
      Waveform::from_tran(study.baseline.tran, "id(mpg)").scaled(-1.0);
  const Waveform ih_s =
      Waveform::from_tran(study.soft.tran, "id(mpg)").scaled(-1.0);

  util::TextTable wave({"t [ns]", "rail base [V]", "rail soft [V]",
                        "vvdd base [V]", "vvdd soft [V]", "I_hdr base [mA]",
                        "I_hdr soft [mA]"});
  for (double t = 1.5e-9; t <= 12e-9; t += 0.75e-9) {
    wave.add_row({util::fmt_g(t * 1e9, 3), util::fmt_g(rail_b.value(t), 4),
                  util::fmt_g(rail_s.value(t), 4),
                  util::fmt_g(vvdd_b.value(t), 3),
                  util::fmt_g(vvdd_s.value(t), 3),
                  util::fmt_g(ih_b.value(t) * 1e3, 3),
                  util::fmt_g(ih_s.value(t) * 1e3, 3)});
  }
  bench::print_table(wave);

  std::printf("\nOutcome metrics:\n");
  util::TextTable table({"variant", "peak inrush [mA]", "rail droop [mV]",
                         "wake time [ns]"});
  table.add_row({"baseline gate", util::fmt_g(study.baseline.peak_current * 1e3, 3),
                 util::fmt_g(study.baseline.droop * 1e3, 3),
                 util::fmt_g(study.baseline.wake_time * 1e9, 3)});
  table.add_row({"Soft-FET gate", util::fmt_g(study.soft.peak_current * 1e3, 3),
                 util::fmt_g(study.soft.droop * 1e3, 3),
                 util::fmt_g(study.soft.wake_time * 1e9, 3)});
  bench::print_table(table);

  std::printf("\nSummary vs paper:\n");
  bench::claim("peak wake current reduction", "~2x",
               util::fmt_g(study.current_reduction_factor(), 3) + "x");
  bench::claim("supply droop improvement", "~20 mV",
               util::fmt_g(study.droop_improvement() * 1e3, 3) + " mV");
  bench::claim("gate voltage ramp softened", "slowed ramp",
               "wake stretched " +
                   util::fmt_g(study.soft.wake_time / study.baseline.wake_time,
                               3) +
                   "x");
  return 0;
}
