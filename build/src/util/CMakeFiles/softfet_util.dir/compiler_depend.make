# Empty compiler generated dependencies file for softfet_util.
# This may be replaced when dependencies are built.
