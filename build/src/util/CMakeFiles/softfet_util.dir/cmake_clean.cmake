file(REMOVE_RECURSE
  "CMakeFiles/softfet_util.dir/csv.cpp.o"
  "CMakeFiles/softfet_util.dir/csv.cpp.o.d"
  "CMakeFiles/softfet_util.dir/error.cpp.o"
  "CMakeFiles/softfet_util.dir/error.cpp.o.d"
  "CMakeFiles/softfet_util.dir/logging.cpp.o"
  "CMakeFiles/softfet_util.dir/logging.cpp.o.d"
  "CMakeFiles/softfet_util.dir/strings.cpp.o"
  "CMakeFiles/softfet_util.dir/strings.cpp.o.d"
  "CMakeFiles/softfet_util.dir/table.cpp.o"
  "CMakeFiles/softfet_util.dir/table.cpp.o.d"
  "CMakeFiles/softfet_util.dir/units.cpp.o"
  "CMakeFiles/softfet_util.dir/units.cpp.o.d"
  "libsoftfet_util.a"
  "libsoftfet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
