file(REMOVE_RECURSE
  "libsoftfet_util.a"
)
