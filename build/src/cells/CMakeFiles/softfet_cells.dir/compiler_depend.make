# Empty compiler generated dependencies file for softfet_cells.
# This may be replaced when dependencies are built.
