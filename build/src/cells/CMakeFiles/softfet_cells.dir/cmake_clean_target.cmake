file(REMOVE_RECURSE
  "libsoftfet_cells.a"
)
