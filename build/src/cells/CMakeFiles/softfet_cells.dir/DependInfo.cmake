
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/hyperfet.cpp" "src/cells/CMakeFiles/softfet_cells.dir/hyperfet.cpp.o" "gcc" "src/cells/CMakeFiles/softfet_cells.dir/hyperfet.cpp.o.d"
  "/root/repo/src/cells/inverter.cpp" "src/cells/CMakeFiles/softfet_cells.dir/inverter.cpp.o" "gcc" "src/cells/CMakeFiles/softfet_cells.dir/inverter.cpp.o.d"
  "/root/repo/src/cells/io_buffer.cpp" "src/cells/CMakeFiles/softfet_cells.dir/io_buffer.cpp.o" "gcc" "src/cells/CMakeFiles/softfet_cells.dir/io_buffer.cpp.o.d"
  "/root/repo/src/cells/pdn.cpp" "src/cells/CMakeFiles/softfet_cells.dir/pdn.cpp.o" "gcc" "src/cells/CMakeFiles/softfet_cells.dir/pdn.cpp.o.d"
  "/root/repo/src/cells/power_gate.cpp" "src/cells/CMakeFiles/softfet_cells.dir/power_gate.cpp.o" "gcc" "src/cells/CMakeFiles/softfet_cells.dir/power_gate.cpp.o.d"
  "/root/repo/src/cells/ring_oscillator.cpp" "src/cells/CMakeFiles/softfet_cells.dir/ring_oscillator.cpp.o" "gcc" "src/cells/CMakeFiles/softfet_cells.dir/ring_oscillator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/softfet_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softfet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/softfet_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/softfet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
