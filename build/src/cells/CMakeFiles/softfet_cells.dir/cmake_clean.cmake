file(REMOVE_RECURSE
  "CMakeFiles/softfet_cells.dir/hyperfet.cpp.o"
  "CMakeFiles/softfet_cells.dir/hyperfet.cpp.o.d"
  "CMakeFiles/softfet_cells.dir/inverter.cpp.o"
  "CMakeFiles/softfet_cells.dir/inverter.cpp.o.d"
  "CMakeFiles/softfet_cells.dir/io_buffer.cpp.o"
  "CMakeFiles/softfet_cells.dir/io_buffer.cpp.o.d"
  "CMakeFiles/softfet_cells.dir/pdn.cpp.o"
  "CMakeFiles/softfet_cells.dir/pdn.cpp.o.d"
  "CMakeFiles/softfet_cells.dir/power_gate.cpp.o"
  "CMakeFiles/softfet_cells.dir/power_gate.cpp.o.d"
  "CMakeFiles/softfet_cells.dir/ring_oscillator.cpp.o"
  "CMakeFiles/softfet_cells.dir/ring_oscillator.cpp.o.d"
  "libsoftfet_cells.a"
  "libsoftfet_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
