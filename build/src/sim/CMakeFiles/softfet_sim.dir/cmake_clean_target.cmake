file(REMOVE_RECURSE
  "libsoftfet_sim.a"
)
