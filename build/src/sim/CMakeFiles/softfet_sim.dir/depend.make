# Empty dependencies file for softfet_sim.
# This may be replaced when dependencies are built.
