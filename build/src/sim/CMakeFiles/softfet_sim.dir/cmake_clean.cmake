file(REMOVE_RECURSE
  "CMakeFiles/softfet_sim.dir/ac_sweep.cpp.o"
  "CMakeFiles/softfet_sim.dir/ac_sweep.cpp.o.d"
  "CMakeFiles/softfet_sim.dir/circuit.cpp.o"
  "CMakeFiles/softfet_sim.dir/circuit.cpp.o.d"
  "CMakeFiles/softfet_sim.dir/dc_sweep.cpp.o"
  "CMakeFiles/softfet_sim.dir/dc_sweep.cpp.o.d"
  "CMakeFiles/softfet_sim.dir/mna_system.cpp.o"
  "CMakeFiles/softfet_sim.dir/mna_system.cpp.o.d"
  "CMakeFiles/softfet_sim.dir/op.cpp.o"
  "CMakeFiles/softfet_sim.dir/op.cpp.o.d"
  "CMakeFiles/softfet_sim.dir/result.cpp.o"
  "CMakeFiles/softfet_sim.dir/result.cpp.o.d"
  "CMakeFiles/softfet_sim.dir/transient.cpp.o"
  "CMakeFiles/softfet_sim.dir/transient.cpp.o.d"
  "libsoftfet_sim.a"
  "libsoftfet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
