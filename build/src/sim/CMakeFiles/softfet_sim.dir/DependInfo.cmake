
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ac_sweep.cpp" "src/sim/CMakeFiles/softfet_sim.dir/ac_sweep.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/ac_sweep.cpp.o.d"
  "/root/repo/src/sim/circuit.cpp" "src/sim/CMakeFiles/softfet_sim.dir/circuit.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/circuit.cpp.o.d"
  "/root/repo/src/sim/dc_sweep.cpp" "src/sim/CMakeFiles/softfet_sim.dir/dc_sweep.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/dc_sweep.cpp.o.d"
  "/root/repo/src/sim/mna_system.cpp" "src/sim/CMakeFiles/softfet_sim.dir/mna_system.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/mna_system.cpp.o.d"
  "/root/repo/src/sim/op.cpp" "src/sim/CMakeFiles/softfet_sim.dir/op.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/op.cpp.o.d"
  "/root/repo/src/sim/result.cpp" "src/sim/CMakeFiles/softfet_sim.dir/result.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/result.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/softfet_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/softfet_sim.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/softfet_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/softfet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
