file(REMOVE_RECURSE
  "CMakeFiles/softfet_core.dir/case_studies.cpp.o"
  "CMakeFiles/softfet_core.dir/case_studies.cpp.o.d"
  "CMakeFiles/softfet_core.dir/characterize.cpp.o"
  "CMakeFiles/softfet_core.dir/characterize.cpp.o.d"
  "CMakeFiles/softfet_core.dir/iso_imax.cpp.o"
  "CMakeFiles/softfet_core.dir/iso_imax.cpp.o.d"
  "CMakeFiles/softfet_core.dir/sweeps.cpp.o"
  "CMakeFiles/softfet_core.dir/sweeps.cpp.o.d"
  "CMakeFiles/softfet_core.dir/variation.cpp.o"
  "CMakeFiles/softfet_core.dir/variation.cpp.o.d"
  "libsoftfet_core.a"
  "libsoftfet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
