file(REMOVE_RECURSE
  "libsoftfet_core.a"
)
