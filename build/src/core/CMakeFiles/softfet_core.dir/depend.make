# Empty dependencies file for softfet_core.
# This may be replaced when dependencies are built.
