file(REMOVE_RECURSE
  "libsoftfet_netlist.a"
)
