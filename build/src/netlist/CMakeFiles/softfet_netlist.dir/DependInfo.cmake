
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/elaborate.cpp" "src/netlist/CMakeFiles/softfet_netlist.dir/elaborate.cpp.o" "gcc" "src/netlist/CMakeFiles/softfet_netlist.dir/elaborate.cpp.o.d"
  "/root/repo/src/netlist/expression.cpp" "src/netlist/CMakeFiles/softfet_netlist.dir/expression.cpp.o" "gcc" "src/netlist/CMakeFiles/softfet_netlist.dir/expression.cpp.o.d"
  "/root/repo/src/netlist/measure_eval.cpp" "src/netlist/CMakeFiles/softfet_netlist.dir/measure_eval.cpp.o" "gcc" "src/netlist/CMakeFiles/softfet_netlist.dir/measure_eval.cpp.o.d"
  "/root/repo/src/netlist/parser.cpp" "src/netlist/CMakeFiles/softfet_netlist.dir/parser.cpp.o" "gcc" "src/netlist/CMakeFiles/softfet_netlist.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/softfet_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/softfet_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softfet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/softfet_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/softfet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
