# Empty compiler generated dependencies file for softfet_netlist.
# This may be replaced when dependencies are built.
