file(REMOVE_RECURSE
  "CMakeFiles/softfet_netlist.dir/elaborate.cpp.o"
  "CMakeFiles/softfet_netlist.dir/elaborate.cpp.o.d"
  "CMakeFiles/softfet_netlist.dir/expression.cpp.o"
  "CMakeFiles/softfet_netlist.dir/expression.cpp.o.d"
  "CMakeFiles/softfet_netlist.dir/measure_eval.cpp.o"
  "CMakeFiles/softfet_netlist.dir/measure_eval.cpp.o.d"
  "CMakeFiles/softfet_netlist.dir/parser.cpp.o"
  "CMakeFiles/softfet_netlist.dir/parser.cpp.o.d"
  "libsoftfet_netlist.a"
  "libsoftfet_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
