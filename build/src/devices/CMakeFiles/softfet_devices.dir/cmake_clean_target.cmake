file(REMOVE_RECURSE
  "libsoftfet_devices.a"
)
