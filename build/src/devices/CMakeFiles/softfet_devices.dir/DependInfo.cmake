
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/capacitor.cpp" "src/devices/CMakeFiles/softfet_devices.dir/capacitor.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/capacitor.cpp.o.d"
  "/root/repo/src/devices/controlled.cpp" "src/devices/CMakeFiles/softfet_devices.dir/controlled.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/controlled.cpp.o.d"
  "/root/repo/src/devices/diode.cpp" "src/devices/CMakeFiles/softfet_devices.dir/diode.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/diode.cpp.o.d"
  "/root/repo/src/devices/inductor.cpp" "src/devices/CMakeFiles/softfet_devices.dir/inductor.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/inductor.cpp.o.d"
  "/root/repo/src/devices/mosfet.cpp" "src/devices/CMakeFiles/softfet_devices.dir/mosfet.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/mosfet.cpp.o.d"
  "/root/repo/src/devices/ptm.cpp" "src/devices/CMakeFiles/softfet_devices.dir/ptm.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/ptm.cpp.o.d"
  "/root/repo/src/devices/resistor.cpp" "src/devices/CMakeFiles/softfet_devices.dir/resistor.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/resistor.cpp.o.d"
  "/root/repo/src/devices/sources.cpp" "src/devices/CMakeFiles/softfet_devices.dir/sources.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/sources.cpp.o.d"
  "/root/repo/src/devices/vswitch.cpp" "src/devices/CMakeFiles/softfet_devices.dir/vswitch.cpp.o" "gcc" "src/devices/CMakeFiles/softfet_devices.dir/vswitch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/softfet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/softfet_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/softfet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
