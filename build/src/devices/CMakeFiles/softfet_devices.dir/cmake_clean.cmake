file(REMOVE_RECURSE
  "CMakeFiles/softfet_devices.dir/capacitor.cpp.o"
  "CMakeFiles/softfet_devices.dir/capacitor.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/controlled.cpp.o"
  "CMakeFiles/softfet_devices.dir/controlled.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/diode.cpp.o"
  "CMakeFiles/softfet_devices.dir/diode.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/inductor.cpp.o"
  "CMakeFiles/softfet_devices.dir/inductor.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/mosfet.cpp.o"
  "CMakeFiles/softfet_devices.dir/mosfet.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/ptm.cpp.o"
  "CMakeFiles/softfet_devices.dir/ptm.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/resistor.cpp.o"
  "CMakeFiles/softfet_devices.dir/resistor.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/sources.cpp.o"
  "CMakeFiles/softfet_devices.dir/sources.cpp.o.d"
  "CMakeFiles/softfet_devices.dir/vswitch.cpp.o"
  "CMakeFiles/softfet_devices.dir/vswitch.cpp.o.d"
  "libsoftfet_devices.a"
  "libsoftfet_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
