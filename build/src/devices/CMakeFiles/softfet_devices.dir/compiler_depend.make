# Empty compiler generated dependencies file for softfet_devices.
# This may be replaced when dependencies are built.
