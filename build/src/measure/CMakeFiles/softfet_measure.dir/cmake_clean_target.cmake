file(REMOVE_RECURSE
  "libsoftfet_measure.a"
)
