file(REMOVE_RECURSE
  "CMakeFiles/softfet_measure.dir/metrics.cpp.o"
  "CMakeFiles/softfet_measure.dir/metrics.cpp.o.d"
  "CMakeFiles/softfet_measure.dir/waveform.cpp.o"
  "CMakeFiles/softfet_measure.dir/waveform.cpp.o.d"
  "libsoftfet_measure.a"
  "libsoftfet_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
