# Empty dependencies file for softfet_measure.
# This may be replaced when dependencies are built.
