file(REMOVE_RECURSE
  "libsoftfet_numeric.a"
)
