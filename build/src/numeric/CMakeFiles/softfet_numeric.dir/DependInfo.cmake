
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/complex_lu.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/complex_lu.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/complex_lu.cpp.o.d"
  "/root/repo/src/numeric/dense_lu.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/dense_lu.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/dense_lu.cpp.o.d"
  "/root/repo/src/numeric/dense_matrix.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/dense_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/numeric/interp.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/interp.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/interp.cpp.o.d"
  "/root/repo/src/numeric/linear_solver.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/linear_solver.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/linear_solver.cpp.o.d"
  "/root/repo/src/numeric/newton.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/newton.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/newton.cpp.o.d"
  "/root/repo/src/numeric/sparse_lu.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/sparse_lu.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/sparse_lu.cpp.o.d"
  "/root/repo/src/numeric/sparse_matrix.cpp" "src/numeric/CMakeFiles/softfet_numeric.dir/sparse_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/softfet_numeric.dir/sparse_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/softfet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
