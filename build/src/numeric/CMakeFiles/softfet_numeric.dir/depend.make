# Empty dependencies file for softfet_numeric.
# This may be replaced when dependencies are built.
