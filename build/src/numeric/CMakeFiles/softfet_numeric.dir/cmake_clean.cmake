file(REMOVE_RECURSE
  "CMakeFiles/softfet_numeric.dir/complex_lu.cpp.o"
  "CMakeFiles/softfet_numeric.dir/complex_lu.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/dense_lu.cpp.o"
  "CMakeFiles/softfet_numeric.dir/dense_lu.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/dense_matrix.cpp.o"
  "CMakeFiles/softfet_numeric.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/interp.cpp.o"
  "CMakeFiles/softfet_numeric.dir/interp.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/linear_solver.cpp.o"
  "CMakeFiles/softfet_numeric.dir/linear_solver.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/newton.cpp.o"
  "CMakeFiles/softfet_numeric.dir/newton.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/sparse_lu.cpp.o"
  "CMakeFiles/softfet_numeric.dir/sparse_lu.cpp.o.d"
  "CMakeFiles/softfet_numeric.dir/sparse_matrix.cpp.o"
  "CMakeFiles/softfet_numeric.dir/sparse_matrix.cpp.o.d"
  "libsoftfet_numeric.a"
  "libsoftfet_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfet_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
