PTM I-V hysteresis (paper Fig. 2 setup)
.model vo2 ptm rins=500k rmet=5k vimt=0.4 vmit=0.3 tptm=10p

Vs in 0 0
Rs in dev 1k
P1 dev 0 vo2

* Sweep the bias up; rerun with a falling range to trace the other branch.
.dc Vs 0 0.6 0.01
.end
