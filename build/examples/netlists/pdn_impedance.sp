PDN impedance scan (AC analysis)
* 1 A AC current probe into the rail: |v(rail)| is |Z(f)|.
Iprobe rail 0 DC 0 AC 1
Lpkg vreg pkg 500p
Rpkg pkg rail 30m
Resr rail dcap 50m
Cdec dcap 0 100p
Vreg vreg 0 1
.ac dec 4 1meg 100g
.end
