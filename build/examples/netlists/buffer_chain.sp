Three-stage buffer chain with subcircuits and parameters
.param vcc=1
.model nch nmos
.model pch pmos

.subckt inv in out vdd wn=120n
MP out in vdd vdd pch W={2*wn} L=40n
MN out in 0 0 nch W={wn} L=40n
.ends

Vdd vdd 0 {vcc}
Vin a 0 PULSE(0 {vcc} 100p 20p 20p 400p 1n)

X1 a b vdd inv
X2 b c vdd inv wn=480n
X3 c d vdd inv wn=1.92u
Cpad d 0 100f

.tran 1p 2n
.end
