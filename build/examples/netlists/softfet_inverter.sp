Soft-FET inverter, falling input (paper Fig. 4 setup)
.param vcc=1 tedge=30p
.model vo2 ptm rins=500k rmet=5k vimt=0.4 vmit=0.3 tptm=10p
.model nch nmos
.model pch pmos

Vdd vdd 0 {vcc}
Vin in 0 PWL(0 {vcc} 100p {vcc} {100p + tedge} 0)

* PTM in series with the common gate: the Soft-FET.
P1 in g vo2
MP out g vdd vdd pch W=240n L=40n
MN out g 0 0 nch W=120n L=40n
Cl out 0 2f

.tran 1p 1n
.measure tran imax MIN i(vdd)
.measure tran vout_final MAX v(out) FROM=0.9n
.measure tran tdelay TRIG v(in) VAL=0.5 FALL=1 TARG v(out) VAL=0.8 RISE=1
.end
