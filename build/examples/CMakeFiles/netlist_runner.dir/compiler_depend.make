# Empty compiler generated dependencies file for netlist_runner.
# This may be replaced when dependencies are built.
