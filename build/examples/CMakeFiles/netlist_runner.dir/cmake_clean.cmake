file(REMOVE_RECURSE
  "CMakeFiles/netlist_runner.dir/netlist_runner.cpp.o"
  "CMakeFiles/netlist_runner.dir/netlist_runner.cpp.o.d"
  "netlist_runner"
  "netlist_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
