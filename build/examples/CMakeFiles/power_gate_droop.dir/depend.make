# Empty dependencies file for power_gate_droop.
# This may be replaced when dependencies are built.
