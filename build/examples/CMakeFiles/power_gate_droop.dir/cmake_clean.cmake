file(REMOVE_RECURSE
  "CMakeFiles/power_gate_droop.dir/power_gate_droop.cpp.o"
  "CMakeFiles/power_gate_droop.dir/power_gate_droop.cpp.o.d"
  "power_gate_droop"
  "power_gate_droop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_gate_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
