# Empty compiler generated dependencies file for io_buffer_ssn.
# This may be replaced when dependencies are built.
