file(REMOVE_RECURSE
  "CMakeFiles/io_buffer_ssn.dir/io_buffer_ssn.cpp.o"
  "CMakeFiles/io_buffer_ssn.dir/io_buffer_ssn.cpp.o.d"
  "io_buffer_ssn"
  "io_buffer_ssn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_buffer_ssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
