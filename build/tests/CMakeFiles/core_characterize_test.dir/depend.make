# Empty dependencies file for core_characterize_test.
# This may be replaced when dependencies are built.
