file(REMOVE_RECURSE
  "CMakeFiles/core_characterize_test.dir/core_characterize_test.cpp.o"
  "CMakeFiles/core_characterize_test.dir/core_characterize_test.cpp.o.d"
  "core_characterize_test"
  "core_characterize_test.pdb"
  "core_characterize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_characterize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
