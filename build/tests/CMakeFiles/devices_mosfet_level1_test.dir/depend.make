# Empty dependencies file for devices_mosfet_level1_test.
# This may be replaced when dependencies are built.
