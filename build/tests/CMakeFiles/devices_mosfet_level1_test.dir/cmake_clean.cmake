file(REMOVE_RECURSE
  "CMakeFiles/devices_mosfet_level1_test.dir/devices_mosfet_level1_test.cpp.o"
  "CMakeFiles/devices_mosfet_level1_test.dir/devices_mosfet_level1_test.cpp.o.d"
  "devices_mosfet_level1_test"
  "devices_mosfet_level1_test.pdb"
  "devices_mosfet_level1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_mosfet_level1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
