# Empty dependencies file for cells_inverter_test.
# This may be replaced when dependencies are built.
