file(REMOVE_RECURSE
  "CMakeFiles/cells_inverter_test.dir/cells_inverter_test.cpp.o"
  "CMakeFiles/cells_inverter_test.dir/cells_inverter_test.cpp.o.d"
  "cells_inverter_test"
  "cells_inverter_test.pdb"
  "cells_inverter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_inverter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
