# Empty dependencies file for cells_io_buffer_test.
# This may be replaced when dependencies are built.
