file(REMOVE_RECURSE
  "CMakeFiles/cells_io_buffer_test.dir/cells_io_buffer_test.cpp.o"
  "CMakeFiles/cells_io_buffer_test.dir/cells_io_buffer_test.cpp.o.d"
  "cells_io_buffer_test"
  "cells_io_buffer_test.pdb"
  "cells_io_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_io_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
