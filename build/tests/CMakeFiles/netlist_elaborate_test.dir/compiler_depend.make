# Empty compiler generated dependencies file for netlist_elaborate_test.
# This may be replaced when dependencies are built.
