file(REMOVE_RECURSE
  "CMakeFiles/netlist_elaborate_test.dir/netlist_elaborate_test.cpp.o"
  "CMakeFiles/netlist_elaborate_test.dir/netlist_elaborate_test.cpp.o.d"
  "netlist_elaborate_test"
  "netlist_elaborate_test.pdb"
  "netlist_elaborate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_elaborate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
