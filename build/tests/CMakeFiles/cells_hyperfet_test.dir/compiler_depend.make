# Empty compiler generated dependencies file for cells_hyperfet_test.
# This may be replaced when dependencies are built.
