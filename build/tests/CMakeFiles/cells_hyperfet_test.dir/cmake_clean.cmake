file(REMOVE_RECURSE
  "CMakeFiles/cells_hyperfet_test.dir/cells_hyperfet_test.cpp.o"
  "CMakeFiles/cells_hyperfet_test.dir/cells_hyperfet_test.cpp.o.d"
  "cells_hyperfet_test"
  "cells_hyperfet_test.pdb"
  "cells_hyperfet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_hyperfet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
