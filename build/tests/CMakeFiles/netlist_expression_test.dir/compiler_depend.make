# Empty compiler generated dependencies file for netlist_expression_test.
# This may be replaced when dependencies are built.
