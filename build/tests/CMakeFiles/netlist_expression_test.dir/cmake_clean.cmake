file(REMOVE_RECURSE
  "CMakeFiles/netlist_expression_test.dir/netlist_expression_test.cpp.o"
  "CMakeFiles/netlist_expression_test.dir/netlist_expression_test.cpp.o.d"
  "netlist_expression_test"
  "netlist_expression_test.pdb"
  "netlist_expression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_expression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
