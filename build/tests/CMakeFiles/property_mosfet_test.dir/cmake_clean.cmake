file(REMOVE_RECURSE
  "CMakeFiles/property_mosfet_test.dir/property_mosfet_test.cpp.o"
  "CMakeFiles/property_mosfet_test.dir/property_mosfet_test.cpp.o.d"
  "property_mosfet_test"
  "property_mosfet_test.pdb"
  "property_mosfet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_mosfet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
