# Empty dependencies file for sim_circuit_test.
# This may be replaced when dependencies are built.
