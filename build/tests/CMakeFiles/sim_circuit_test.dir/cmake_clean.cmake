file(REMOVE_RECURSE
  "CMakeFiles/sim_circuit_test.dir/sim_circuit_test.cpp.o"
  "CMakeFiles/sim_circuit_test.dir/sim_circuit_test.cpp.o.d"
  "sim_circuit_test"
  "sim_circuit_test.pdb"
  "sim_circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
