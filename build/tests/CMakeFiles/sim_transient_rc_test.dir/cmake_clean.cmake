file(REMOVE_RECURSE
  "CMakeFiles/sim_transient_rc_test.dir/sim_transient_rc_test.cpp.o"
  "CMakeFiles/sim_transient_rc_test.dir/sim_transient_rc_test.cpp.o.d"
  "sim_transient_rc_test"
  "sim_transient_rc_test.pdb"
  "sim_transient_rc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_transient_rc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
