# Empty compiler generated dependencies file for sim_transient_rc_test.
# This may be replaced when dependencies are built.
