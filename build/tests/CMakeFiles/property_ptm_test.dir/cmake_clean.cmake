file(REMOVE_RECURSE
  "CMakeFiles/property_ptm_test.dir/property_ptm_test.cpp.o"
  "CMakeFiles/property_ptm_test.dir/property_ptm_test.cpp.o.d"
  "property_ptm_test"
  "property_ptm_test.pdb"
  "property_ptm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_ptm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
