# Empty dependencies file for property_ptm_test.
# This may be replaced when dependencies are built.
