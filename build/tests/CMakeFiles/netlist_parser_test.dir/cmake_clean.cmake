file(REMOVE_RECURSE
  "CMakeFiles/netlist_parser_test.dir/netlist_parser_test.cpp.o"
  "CMakeFiles/netlist_parser_test.dir/netlist_parser_test.cpp.o.d"
  "netlist_parser_test"
  "netlist_parser_test.pdb"
  "netlist_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
