# Empty dependencies file for netlist_parser_test.
# This may be replaced when dependencies are built.
