file(REMOVE_RECURSE
  "CMakeFiles/core_variation_test.dir/core_variation_test.cpp.o"
  "CMakeFiles/core_variation_test.dir/core_variation_test.cpp.o.d"
  "core_variation_test"
  "core_variation_test.pdb"
  "core_variation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_variation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
