# Empty dependencies file for core_variation_test.
# This may be replaced when dependencies are built.
