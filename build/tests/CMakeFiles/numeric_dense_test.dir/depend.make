# Empty dependencies file for numeric_dense_test.
# This may be replaced when dependencies are built.
