file(REMOVE_RECURSE
  "CMakeFiles/numeric_dense_test.dir/numeric_dense_test.cpp.o"
  "CMakeFiles/numeric_dense_test.dir/numeric_dense_test.cpp.o.d"
  "numeric_dense_test"
  "numeric_dense_test.pdb"
  "numeric_dense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
