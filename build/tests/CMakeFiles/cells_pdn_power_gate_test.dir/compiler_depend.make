# Empty compiler generated dependencies file for cells_pdn_power_gate_test.
# This may be replaced when dependencies are built.
