file(REMOVE_RECURSE
  "CMakeFiles/cells_pdn_power_gate_test.dir/cells_pdn_power_gate_test.cpp.o"
  "CMakeFiles/cells_pdn_power_gate_test.dir/cells_pdn_power_gate_test.cpp.o.d"
  "cells_pdn_power_gate_test"
  "cells_pdn_power_gate_test.pdb"
  "cells_pdn_power_gate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_pdn_power_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
