file(REMOVE_RECURSE
  "CMakeFiles/numeric_interp_test.dir/numeric_interp_test.cpp.o"
  "CMakeFiles/numeric_interp_test.dir/numeric_interp_test.cpp.o.d"
  "numeric_interp_test"
  "numeric_interp_test.pdb"
  "numeric_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
