file(REMOVE_RECURSE
  "CMakeFiles/numeric_sparse_test.dir/numeric_sparse_test.cpp.o"
  "CMakeFiles/numeric_sparse_test.dir/numeric_sparse_test.cpp.o.d"
  "numeric_sparse_test"
  "numeric_sparse_test.pdb"
  "numeric_sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
