file(REMOVE_RECURSE
  "CMakeFiles/property_transient_test.dir/property_transient_test.cpp.o"
  "CMakeFiles/property_transient_test.dir/property_transient_test.cpp.o.d"
  "property_transient_test"
  "property_transient_test.pdb"
  "property_transient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
