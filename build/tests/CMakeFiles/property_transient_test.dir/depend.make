# Empty dependencies file for property_transient_test.
# This may be replaced when dependencies are built.
