# Empty dependencies file for core_iso_imax_test.
# This may be replaced when dependencies are built.
