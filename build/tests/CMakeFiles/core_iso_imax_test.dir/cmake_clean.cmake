file(REMOVE_RECURSE
  "CMakeFiles/core_iso_imax_test.dir/core_iso_imax_test.cpp.o"
  "CMakeFiles/core_iso_imax_test.dir/core_iso_imax_test.cpp.o.d"
  "core_iso_imax_test"
  "core_iso_imax_test.pdb"
  "core_iso_imax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_iso_imax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
