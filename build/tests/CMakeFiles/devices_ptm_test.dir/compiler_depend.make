# Empty compiler generated dependencies file for devices_ptm_test.
# This may be replaced when dependencies are built.
