file(REMOVE_RECURSE
  "CMakeFiles/devices_ptm_test.dir/devices_ptm_test.cpp.o"
  "CMakeFiles/devices_ptm_test.dir/devices_ptm_test.cpp.o.d"
  "devices_ptm_test"
  "devices_ptm_test.pdb"
  "devices_ptm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_ptm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
