# Empty compiler generated dependencies file for cells_ring_oscillator_test.
# This may be replaced when dependencies are built.
