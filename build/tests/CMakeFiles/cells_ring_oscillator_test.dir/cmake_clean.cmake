file(REMOVE_RECURSE
  "CMakeFiles/cells_ring_oscillator_test.dir/cells_ring_oscillator_test.cpp.o"
  "CMakeFiles/cells_ring_oscillator_test.dir/cells_ring_oscillator_test.cpp.o.d"
  "cells_ring_oscillator_test"
  "cells_ring_oscillator_test.pdb"
  "cells_ring_oscillator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_ring_oscillator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
