file(REMOVE_RECURSE
  "CMakeFiles/core_case_studies_test.dir/core_case_studies_test.cpp.o"
  "CMakeFiles/core_case_studies_test.dir/core_case_studies_test.cpp.o.d"
  "core_case_studies_test"
  "core_case_studies_test.pdb"
  "core_case_studies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_case_studies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
