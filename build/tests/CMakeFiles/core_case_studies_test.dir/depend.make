# Empty dependencies file for core_case_studies_test.
# This may be replaced when dependencies are built.
