# Empty dependencies file for numeric_newton_test.
# This may be replaced when dependencies are built.
