file(REMOVE_RECURSE
  "CMakeFiles/numeric_newton_test.dir/numeric_newton_test.cpp.o"
  "CMakeFiles/numeric_newton_test.dir/numeric_newton_test.cpp.o.d"
  "numeric_newton_test"
  "numeric_newton_test.pdb"
  "numeric_newton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_newton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
