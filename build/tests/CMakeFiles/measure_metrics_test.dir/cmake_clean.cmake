file(REMOVE_RECURSE
  "CMakeFiles/measure_metrics_test.dir/measure_metrics_test.cpp.o"
  "CMakeFiles/measure_metrics_test.dir/measure_metrics_test.cpp.o.d"
  "measure_metrics_test"
  "measure_metrics_test.pdb"
  "measure_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
