file(REMOVE_RECURSE
  "CMakeFiles/sim_ac_test.dir/sim_ac_test.cpp.o"
  "CMakeFiles/sim_ac_test.dir/sim_ac_test.cpp.o.d"
  "sim_ac_test"
  "sim_ac_test.pdb"
  "sim_ac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
