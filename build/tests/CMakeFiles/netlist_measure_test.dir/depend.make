# Empty dependencies file for netlist_measure_test.
# This may be replaced when dependencies are built.
