file(REMOVE_RECURSE
  "CMakeFiles/netlist_measure_test.dir/netlist_measure_test.cpp.o"
  "CMakeFiles/netlist_measure_test.dir/netlist_measure_test.cpp.o.d"
  "netlist_measure_test"
  "netlist_measure_test.pdb"
  "netlist_measure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_measure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
