# Empty dependencies file for sim_transient_rlc_test.
# This may be replaced when dependencies are built.
