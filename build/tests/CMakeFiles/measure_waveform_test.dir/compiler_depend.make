# Empty compiler generated dependencies file for measure_waveform_test.
# This may be replaced when dependencies are built.
