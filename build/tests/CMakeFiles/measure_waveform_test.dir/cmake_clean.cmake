file(REMOVE_RECURSE
  "CMakeFiles/measure_waveform_test.dir/measure_waveform_test.cpp.o"
  "CMakeFiles/measure_waveform_test.dir/measure_waveform_test.cpp.o.d"
  "measure_waveform_test"
  "measure_waveform_test.pdb"
  "measure_waveform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_waveform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
