# Empty dependencies file for sim_robustness_test.
# This may be replaced when dependencies are built.
