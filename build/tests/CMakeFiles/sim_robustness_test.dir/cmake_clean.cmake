file(REMOVE_RECURSE
  "CMakeFiles/sim_robustness_test.dir/sim_robustness_test.cpp.o"
  "CMakeFiles/sim_robustness_test.dir/sim_robustness_test.cpp.o.d"
  "sim_robustness_test"
  "sim_robustness_test.pdb"
  "sim_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
