# Empty dependencies file for devices_mosfet_test.
# This may be replaced when dependencies are built.
