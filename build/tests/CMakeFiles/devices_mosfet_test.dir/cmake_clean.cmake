file(REMOVE_RECURSE
  "CMakeFiles/devices_mosfet_test.dir/devices_mosfet_test.cpp.o"
  "CMakeFiles/devices_mosfet_test.dir/devices_mosfet_test.cpp.o.d"
  "devices_mosfet_test"
  "devices_mosfet_test.pdb"
  "devices_mosfet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_mosfet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
