# Empty dependencies file for core_sweeps_test.
# This may be replaced when dependencies are built.
