file(REMOVE_RECURSE
  "CMakeFiles/core_sweeps_test.dir/core_sweeps_test.cpp.o"
  "CMakeFiles/core_sweeps_test.dir/core_sweeps_test.cpp.o.d"
  "core_sweeps_test"
  "core_sweeps_test.pdb"
  "core_sweeps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
