# Empty dependencies file for devices_sources_test.
# This may be replaced when dependencies are built.
