file(REMOVE_RECURSE
  "CMakeFiles/devices_sources_test.dir/devices_sources_test.cpp.o"
  "CMakeFiles/devices_sources_test.dir/devices_sources_test.cpp.o.d"
  "devices_sources_test"
  "devices_sources_test.pdb"
  "devices_sources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_sources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
