file(REMOVE_RECURSE
  "CMakeFiles/sim_dc_test.dir/sim_dc_test.cpp.o"
  "CMakeFiles/sim_dc_test.dir/sim_dc_test.cpp.o.d"
  "sim_dc_test"
  "sim_dc_test.pdb"
  "sim_dc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
