# Empty dependencies file for sim_dc_test.
# This may be replaced when dependencies are built.
