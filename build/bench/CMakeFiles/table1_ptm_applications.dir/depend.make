# Empty dependencies file for table1_ptm_applications.
# This may be replaced when dependencies are built.
