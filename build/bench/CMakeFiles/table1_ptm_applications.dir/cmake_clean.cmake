file(REMOVE_RECURSE
  "CMakeFiles/table1_ptm_applications.dir/table1_ptm_applications.cpp.o"
  "CMakeFiles/table1_ptm_applications.dir/table1_ptm_applications.cpp.o.d"
  "table1_ptm_applications"
  "table1_ptm_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ptm_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
