# Empty compiler generated dependencies file for sec3a_dc_noise_margin.
# This may be replaced when dependencies are built.
