file(REMOVE_RECURSE
  "CMakeFiles/sec3a_dc_noise_margin.dir/sec3a_dc_noise_margin.cpp.o"
  "CMakeFiles/sec3a_dc_noise_margin.dir/sec3a_dc_noise_margin.cpp.o.d"
  "sec3a_dc_noise_margin"
  "sec3a_dc_noise_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3a_dc_noise_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
