file(REMOVE_RECURSE
  "CMakeFiles/fig10_power_gate.dir/fig10_power_gate.cpp.o"
  "CMakeFiles/fig10_power_gate.dir/fig10_power_gate.cpp.o.d"
  "fig10_power_gate"
  "fig10_power_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_power_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
