# Empty dependencies file for fig11_io_buffer.
# This may be replaced when dependencies are built.
