file(REMOVE_RECURSE
  "CMakeFiles/fig11_io_buffer.dir/fig11_io_buffer.cpp.o"
  "CMakeFiles/fig11_io_buffer.dir/fig11_io_buffer.cpp.o.d"
  "fig11_io_buffer"
  "fig11_io_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_io_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
