# Empty dependencies file for ablation_slew_tptm_ratio.
# This may be replaced when dependencies are built.
