file(REMOVE_RECURSE
  "CMakeFiles/ablation_slew_tptm_ratio.dir/ablation_slew_tptm_ratio.cpp.o"
  "CMakeFiles/ablation_slew_tptm_ratio.dir/ablation_slew_tptm_ratio.cpp.o.d"
  "ablation_slew_tptm_ratio"
  "ablation_slew_tptm_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slew_tptm_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
