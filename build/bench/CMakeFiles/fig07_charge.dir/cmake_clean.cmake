file(REMOVE_RECURSE
  "CMakeFiles/fig07_charge.dir/fig07_charge.cpp.o"
  "CMakeFiles/fig07_charge.dir/fig07_charge.cpp.o.d"
  "fig07_charge"
  "fig07_charge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_charge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
