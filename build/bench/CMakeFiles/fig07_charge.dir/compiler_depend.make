# Empty compiler generated dependencies file for fig07_charge.
# This may be replaced when dependencies are built.
