# Empty compiler generated dependencies file for ac_pdn_impedance.
# This may be replaced when dependencies are built.
