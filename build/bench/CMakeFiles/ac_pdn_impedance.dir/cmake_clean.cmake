file(REMOVE_RECURSE
  "CMakeFiles/ac_pdn_impedance.dir/ac_pdn_impedance.cpp.o"
  "CMakeFiles/ac_pdn_impedance.dir/ac_pdn_impedance.cpp.o.d"
  "ac_pdn_impedance"
  "ac_pdn_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_pdn_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
