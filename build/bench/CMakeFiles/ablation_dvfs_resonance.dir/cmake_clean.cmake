file(REMOVE_RECURSE
  "CMakeFiles/ablation_dvfs_resonance.dir/ablation_dvfs_resonance.cpp.o"
  "CMakeFiles/ablation_dvfs_resonance.dir/ablation_dvfs_resonance.cpp.o.d"
  "ablation_dvfs_resonance"
  "ablation_dvfs_resonance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvfs_resonance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
