# Empty dependencies file for ablation_dvfs_resonance.
# This may be replaced when dependencies are built.
