# Empty compiler generated dependencies file for ablation_corners.
# This may be replaced when dependencies are built.
