# Empty compiler generated dependencies file for fig01_pdn_droop.
# This may be replaced when dependencies are built.
