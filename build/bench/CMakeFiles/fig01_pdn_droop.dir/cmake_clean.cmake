file(REMOVE_RECURSE
  "CMakeFiles/fig01_pdn_droop.dir/fig01_pdn_droop.cpp.o"
  "CMakeFiles/fig01_pdn_droop.dir/fig01_pdn_droop.cpp.o.d"
  "fig01_pdn_droop"
  "fig01_pdn_droop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pdn_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
