file(REMOVE_RECURSE
  "CMakeFiles/fig03_soft_charging.dir/fig03_soft_charging.cpp.o"
  "CMakeFiles/fig03_soft_charging.dir/fig03_soft_charging.cpp.o.d"
  "fig03_soft_charging"
  "fig03_soft_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_soft_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
