# Empty dependencies file for fig03_soft_charging.
# This may be replaced when dependencies are built.
