file(REMOVE_RECURSE
  "CMakeFiles/ablation_compact_model.dir/ablation_compact_model.cpp.o"
  "CMakeFiles/ablation_compact_model.dir/ablation_compact_model.cpp.o.d"
  "ablation_compact_model"
  "ablation_compact_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compact_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
