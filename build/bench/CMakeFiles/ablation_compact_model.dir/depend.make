# Empty dependencies file for ablation_compact_model.
# This may be replaced when dependencies are built.
