file(REMOVE_RECURSE
  "CMakeFiles/fig02_ptm_iv.dir/fig02_ptm_iv.cpp.o"
  "CMakeFiles/fig02_ptm_iv.dir/fig02_ptm_iv.cpp.o.d"
  "fig02_ptm_iv"
  "fig02_ptm_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ptm_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
