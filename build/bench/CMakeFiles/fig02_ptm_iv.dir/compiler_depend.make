# Empty compiler generated dependencies file for fig02_ptm_iv.
# This may be replaced when dependencies are built.
