# Empty dependencies file for fig08_tptm_sweep.
# This may be replaced when dependencies are built.
