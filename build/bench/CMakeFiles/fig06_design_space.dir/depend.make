# Empty dependencies file for fig06_design_space.
# This may be replaced when dependencies are built.
