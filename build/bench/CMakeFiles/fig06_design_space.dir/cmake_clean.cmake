file(REMOVE_RECURSE
  "CMakeFiles/fig06_design_space.dir/fig06_design_space.cpp.o"
  "CMakeFiles/fig06_design_space.dir/fig06_design_space.cpp.o.d"
  "fig06_design_space"
  "fig06_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
