# Empty compiler generated dependencies file for ablation_resistance_law.
# This may be replaced when dependencies are built.
