file(REMOVE_RECURSE
  "CMakeFiles/ablation_resistance_law.dir/ablation_resistance_law.cpp.o"
  "CMakeFiles/ablation_resistance_law.dir/ablation_resistance_law.cpp.o.d"
  "ablation_resistance_law"
  "ablation_resistance_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resistance_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
