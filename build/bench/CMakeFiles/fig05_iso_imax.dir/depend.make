# Empty dependencies file for fig05_iso_imax.
# This may be replaced when dependencies are built.
