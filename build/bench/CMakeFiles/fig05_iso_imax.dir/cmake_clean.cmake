file(REMOVE_RECURSE
  "CMakeFiles/fig05_iso_imax.dir/fig05_iso_imax.cpp.o"
  "CMakeFiles/fig05_iso_imax.dir/fig05_iso_imax.cpp.o.d"
  "fig05_iso_imax"
  "fig05_iso_imax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_iso_imax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
