file(REMOVE_RECURSE
  "CMakeFiles/fig04_softfet_inverter.dir/fig04_softfet_inverter.cpp.o"
  "CMakeFiles/fig04_softfet_inverter.dir/fig04_softfet_inverter.cpp.o.d"
  "fig04_softfet_inverter"
  "fig04_softfet_inverter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_softfet_inverter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
