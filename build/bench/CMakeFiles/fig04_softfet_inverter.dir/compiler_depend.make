# Empty compiler generated dependencies file for fig04_softfet_inverter.
# This may be replaced when dependencies are built.
