# Empty compiler generated dependencies file for sensitivity_ptm_params.
# This may be replaced when dependencies are built.
