file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_ptm_params.dir/sensitivity_ptm_params.cpp.o"
  "CMakeFiles/sensitivity_ptm_params.dir/sensitivity_ptm_params.cpp.o.d"
  "sensitivity_ptm_params"
  "sensitivity_ptm_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_ptm_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
